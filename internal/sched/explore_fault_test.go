package sched

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// schedulePanicObserver crashes on schedules that run the forked thread
// early: it panics upon seeing the second T1 event while fewer than three
// T0 events have been observed. The decision depends only on the event
// stream, so it is a deterministic function of the schedule — exactly the
// kind of input-dependent checker crash the explorer must isolate — and
// it behaves identically no matter which worker replays the schedule.
type schedulePanicObserver struct {
	t0, t1 int
}

func (o *schedulePanicObserver) Event(e trace.Event) {
	switch e.Tid {
	case 0:
		o.t0++
	case 1:
		o.t1++
		if o.t1 == 2 && o.t0 < 3 {
			panic("observer crashed on this schedule")
		}
	}
}

// TestExplorePanickingObserver is the regression test for the parallel
// engine's fault isolation: before replayTask closed t.done on panic, a
// crashing observer under Parallel > 1 left the driver blocked forever.
// Now a crashing schedule must surface as an *ExploreError finding, in the
// same visit slot at any worker count, with the search still completing.
func TestExplorePanickingObserver(t *testing.T) {
	run := func(workers int) ([]string, *ExploreReport) {
		var log []string
		rep, err := Explore(incrementers(), ExploreOptions{
			MaxRuns:        4000,
			MaxPreemptions: 2,
			Parallel:       workers,
			Observers:      func() []Observer { return []Observer{&schedulePanicObserver{}} },
			Visit: func(res *Result, err error) bool {
				if err != nil {
					log = append(log, "err:"+err.Error())
				} else {
					log = append(log, "ok")
				}
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return log, rep
	}
	seqLog, seqRep := run(1)
	if seqRep.Panics == 0 {
		t.Fatal("no schedule triggered the observer panic; the fixture is broken")
	}
	if seqRep.Panics >= seqRep.Runs {
		t.Fatalf("every run panicked (%d of %d); fixture should mix crashing and clean schedules",
			seqRep.Panics, seqRep.Runs)
	}
	if seqRep.Status != StatusPanic {
		t.Fatalf("status = %s, want %s for a completed search with panics", seqRep.Status, StatusPanic)
	}
	for _, workers := range []int{2, 4} {
		parLog, parRep := run(workers)
		if parRep.Runs != seqRep.Runs || parRep.Panics != seqRep.Panics || parRep.Status != seqRep.Status {
			t.Fatalf("parallel=%d: report %+v != sequential %+v", workers, parRep, seqRep)
		}
		for i := range seqLog {
			if parLog[i] != seqLog[i] {
				t.Fatalf("parallel=%d: visit %d differs:\n  seq %s\n  par %s", workers, i, seqLog[i], parLog[i])
			}
		}
	}
}

// TestExplorePanicErrorShape: the error handed to Visit for a crashed
// replay carries the reproducing prefix and a captured stack.
func TestExplorePanicErrorShape(t *testing.T) {
	var got *ExploreError
	_, err := Explore(incrementers(), ExploreOptions{
		MaxRuns:        4000,
		MaxPreemptions: 2,
		Observers:      func() []Observer { return []Observer{&schedulePanicObserver{}} },
		Visit: func(res *Result, err error) bool {
			if pe, ok := err.(*ExploreError); ok && got == nil { //nolint:errorlint
				got = pe
			}
			return got == nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no *ExploreError reached Visit")
	}
	if len(got.Stack) == 0 {
		t.Error("ExploreError.Stack is empty")
	}
	if !strings.Contains(got.Error(), "observer crashed") {
		t.Errorf("Error() = %q, want the panic value in it", got.Error())
	}
	// The prefix must reproduce the crash deterministically.
	_, _, rerr := replayPrefix(incrementers(), &ExploreOptions{
		Observers: func() []Observer { return []Observer{&schedulePanicObserver{}} },
	}, nil, got.Prefix)
	if _, ok := rerr.(*ExploreError); !ok { //nolint:errorlint
		t.Fatalf("replaying the crash prefix gave %v, want *ExploreError", rerr)
	}
}

// TestExploreObserverFactoryPanic: a panic on the worker side of a replay
// (the factory runs before the virtual program starts) used to escape
// replayTask without closing t.done, deadlocking the parallel driver.
func TestExploreObserverFactoryPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep, err := Explore(incrementers(), ExploreOptions{
			MaxRuns:        100,
			MaxPreemptions: 2,
			Parallel:       workers,
			Observers:      func() []Observer { panic("factory exploded") },
			Visit: func(res *Result, err error) bool {
				if _, ok := err.(*ExploreError); !ok { //nolint:errorlint
					t.Errorf("visit err = %v, want *ExploreError", err)
				}
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Runs != 1 || rep.Panics != 1 {
			t.Fatalf("parallel=%d: report %+v, want 1 run, 1 panic", workers, rep)
		}
		if rep.Status != StatusPanic {
			t.Fatalf("parallel=%d: status = %s, want %s", workers, rep.Status, StatusPanic)
		}
	}
}

// TestExploreMaxStatesPrefix: a state-budget cutoff yields exactly a prefix
// of the sequential visit sequence at any worker count — the tentpole
// partial-result determinism property.
func TestExploreMaxStatesPrefix(t *testing.T) {
	base := ExploreOptions{MaxRuns: 4000, MaxPreemptions: 2}
	fullLog, fullRuns := visitLog(t, incrementers, base)
	if fullRuns < 4 {
		t.Fatalf("fixture explores only %d runs", fullRuns)
	}
	// Enough states for a few runs but nowhere near all of them.
	var budget int64 = 40
	var want []string
	for _, workers := range []int{1, 2, 4} {
		opts := base
		opts.Parallel = workers
		opts.Budget = Budget{MaxStates: budget}
		log, runs := visitLog(t, incrementers, opts)
		// visitLog fatals on an infrastructure error; re-run the report
		// checks through a direct call to keep the report visible.
		rep, err := Explore(incrementers(), func() ExploreOptions {
			o := opts
			o.Visit = func(*Result, error) bool { return true }
			return o
		}())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status != StatusBudget {
			t.Fatalf("parallel=%d: status = %s, want %s", workers, rep.Status, StatusBudget)
		}
		if runs != rep.Runs {
			t.Fatalf("parallel=%d: visitLog runs %d vs report %d (replays are not deterministic?)", workers, runs, rep.Runs)
		}
		if rep.Runs == 0 || rep.Runs >= fullRuns {
			t.Fatalf("parallel=%d: %d runs under budget, full search has %d", workers, rep.Runs, fullRuns)
		}
		if rep.Abandoned == 0 {
			t.Fatalf("parallel=%d: cutoff left Abandoned = 0", workers)
		}
		if rep.States < budget {
			t.Fatalf("parallel=%d: stopped at %d states before the %d budget", workers, rep.States, budget)
		}
		if workers == 1 {
			want = log
			// The budgeted sequential log must be an exact prefix of the
			// unbudgeted search's visit sequence.
			for i := range want {
				if want[i] != fullLog[i] {
					t.Fatalf("budgeted visit %d is not the full search's prefix", i)
				}
			}
			continue
		}
		if len(log) != len(want) {
			t.Fatalf("parallel=%d: %d visits vs sequential %d", workers, len(log), len(want))
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("parallel=%d: visit %d differs under cutoff", workers, i)
			}
		}
	}
}

// TestExplorePreCancelledContext: a context cancelled before the search
// starts visits nothing and abandons the whole frontier.
func TestExplorePreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		rep, err := Explore(incrementers(), ExploreOptions{
			MaxRuns:        100,
			MaxPreemptions: 2,
			Parallel:       workers,
			Budget:         Budget{Ctx: ctx},
			Visit: func(*Result, error) bool {
				t.Error("Visit called under a pre-cancelled context")
				return false
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Runs != 0 || rep.Status != StatusCancelled || rep.Abandoned == 0 {
			t.Fatalf("parallel=%d: report %+v, want 0 runs, cancelled, abandoned > 0", workers, rep)
		}
	}
}

// TestExploreCancelDuringVisit: cancellation raised by the Visit callback
// itself lands on the very next driver check, so the visit count is
// deterministic at any worker count even though workers may be mid-replay.
func TestExploreCancelDuringVisit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		visits := 0
		rep, err := Explore(incrementers(), ExploreOptions{
			MaxRuns:        4000,
			MaxPreemptions: 2,
			Parallel:       workers,
			Budget:         Budget{Ctx: ctx},
			Visit: func(*Result, error) bool {
				visits++
				if visits == 3 {
					cancel()
				}
				return true
			},
		})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if visits != 3 || rep.Runs != 3 {
			t.Fatalf("parallel=%d: visits=%d runs=%d, want exactly 3", workers, visits, rep.Runs)
		}
		if rep.Status != StatusCancelled {
			t.Fatalf("parallel=%d: status = %s, want %s", workers, rep.Status, StatusCancelled)
		}
	}
}

// TestExploreDeadline: a wall-clock budget ends a large search with the
// deadline status rather than an error.
func TestExploreDeadline(t *testing.T) {
	rep, err := Explore(counterProgram(2, 60, true), ExploreOptions{
		MaxRuns:        1_000_000,
		MaxPreemptions: 2,
		Budget:         Budget{Timeout: time.Millisecond},
		Visit:          func(*Result, error) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusDeadline {
		t.Fatalf("status = %s, want %s", rep.Status, StatusDeadline)
	}
}

// TestExploreMemBudget: an unmeetable heap budget stops the search at the
// first driver check (the heap always exceeds one byte).
func TestExploreMemBudget(t *testing.T) {
	rep, err := Explore(incrementers(), ExploreOptions{
		MaxRuns:        100,
		MaxPreemptions: 2,
		Budget:         Budget{MemBudget: 1},
		Visit: func(*Result, error) bool {
			t.Error("Visit called under an unmeetable memory budget")
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 0 || rep.Status != StatusBudget {
		t.Fatalf("report %+v, want 0 runs with %s", rep, StatusBudget)
	}
}

// TestExploreMaxRunsStatus: the pre-existing MaxRuns cap now reports itself
// as a budget cutoff with the abandoned frontier counted.
func TestExploreMaxRunsStatus(t *testing.T) {
	rep, err := Explore(incrementers(), ExploreOptions{
		MaxRuns:        3,
		MaxPreemptions: 2,
		Visit:          func(*Result, error) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 3 || rep.Status != StatusBudget || rep.Abandoned == 0 {
		t.Fatalf("report %+v, want 3 runs, %s, abandoned > 0", rep, StatusBudget)
	}
}

// TestContextStatus pins the error→status mapping.
func TestContextStatus(t *testing.T) {
	if got := ContextStatus(nil); got != StatusComplete {
		t.Errorf("nil → %s", got)
	}
	if got := ContextStatus(context.DeadlineExceeded); got != StatusDeadline {
		t.Errorf("DeadlineExceeded → %s", got)
	}
	if got := ContextStatus(context.Canceled); got != StatusCancelled {
		t.Errorf("Canceled → %s", got)
	}
}
