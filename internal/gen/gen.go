// Package gen generates random well-formed concurrent programs for
// whole-pipeline property testing: unlike the hand-built traces used in
// unit tests, generated *programs* exercise the virtual scheduler, the
// instrumentation, and every checker together, under any strategy.
//
// Generated programs are deterministic given their seed: thread bodies are
// built as operation lists up front (no runtime randomness), all loops are
// bounded, locks are block-structured and acquired in id order (no
// deadlocks by construction), and condition variables are avoided so every
// schedule terminates.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// Config bounds the generated program shape.
type Config struct {
	// Threads is the worker count (2..8 recommended); <=0 means 3.
	Threads int
	// Vars is the shared-variable count; <=0 means 4.
	Vars int
	// Locks is the lock count; <=0 means 2.
	Locks int
	// OpsPerThread bounds each worker's straight-line length; <=0 means 12.
	OpsPerThread int
	// YieldProb (0..1) controls how densely yields are sprinkled; negative
	// means 0.2.
	YieldProb float64
}

func (c Config) norm() Config {
	if c.Threads <= 0 {
		c.Threads = 3
	}
	if c.Vars <= 0 {
		c.Vars = 4
	}
	if c.Locks <= 0 {
		c.Locks = 2
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 12
	}
	if c.YieldProb < 0 {
		c.YieldProb = 0.2
	}
	return c
}

// opKind is one generated operation.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opCritical // lock; read-modify-write; unlock
	opNested   // two ordered locks around accesses
	opYield
	opCall // wrap the next few ops in a method span
)

type genOp struct {
	kind opKind
	v    int // variable index
	l    int // lock index
	l2   int // second lock (nested)
	n    int // span length for opCall
}

// Program builds a random program from the seed. The same (seed, cfg)
// always yields the same program.
func Program(seed int64, cfg Config) *sched.Program {
	cfg = cfg.norm()
	r := rand.New(rand.NewSource(seed))
	p := sched.NewProgram(fmt.Sprintf("gen-%d", seed))
	vars := p.Vars("v", cfg.Vars)
	locks := p.Mutexes("m", cfg.Locks)

	// Pre-generate each worker's operation list.
	bodies := make([][]genOp, cfg.Threads)
	for w := range bodies {
		n := 3 + r.Intn(cfg.OpsPerThread)
		ops := make([]genOp, 0, n)
		for i := 0; i < n; i++ {
			if r.Float64() < cfg.YieldProb {
				ops = append(ops, genOp{kind: opYield})
				continue
			}
			switch r.Intn(6) {
			case 0:
				ops = append(ops, genOp{kind: opRead, v: r.Intn(cfg.Vars)})
			case 1:
				ops = append(ops, genOp{kind: opWrite, v: r.Intn(cfg.Vars)})
			case 2, 3:
				ops = append(ops, genOp{kind: opCritical, v: r.Intn(cfg.Vars), l: r.Intn(cfg.Locks)})
			case 4:
				l1 := r.Intn(cfg.Locks)
				l2 := r.Intn(cfg.Locks)
				if l1 > l2 {
					l1, l2 = l2, l1
				}
				ops = append(ops, genOp{kind: opNested, v: r.Intn(cfg.Vars), l: l1, l2: l2})
			case 5:
				ops = append(ops, genOp{kind: opCall, n: 1 + r.Intn(3)})
			}
		}
		bodies[w] = ops
	}

	run := func(t *sched.T, ops []genOp) {
		i := 0
		var exec func(op genOp)
		exec = func(op genOp) {
			switch op.kind {
			case opRead:
				t.Read(vars[op.v])
			case opWrite:
				t.Write(vars[op.v], int64(op.v+1))
			case opCritical:
				t.Acquire(locks[op.l])
				t.Write(vars[op.v], t.Read(vars[op.v])+1)
				t.Release(locks[op.l])
			case opNested:
				t.Acquire(locks[op.l])
				if op.l2 != op.l {
					t.Acquire(locks[op.l2])
				}
				t.Write(vars[op.v], t.Read(vars[op.v])+2)
				if op.l2 != op.l {
					t.Release(locks[op.l2])
				}
				t.Release(locks[op.l])
			case opYield:
				t.Yield()
			case opCall:
				t.Call(fmt.Sprintf("m%d", op.n), func() {
					for k := 0; k < op.n && i < len(ops); k++ {
						inner := ops[i]
						i++
						if inner.kind == opCall {
							continue // no nested spans; keeps stacks flat
						}
						exec(inner)
					}
				})
			}
		}
		for i < len(ops) {
			op := ops[i]
			i++
			exec(op)
		}
	}

	p.SetMain(func(t *sched.T) {
		hs := make([]sched.Handle, cfg.Threads)
		for w := 0; w < cfg.Threads; w++ {
			w := w
			hs[w] = t.Fork(fmt.Sprintf("g%d", w), func(t *sched.T) { run(t, bodies[w]) })
		}
		for _, h := range hs {
			t.Join(h)
		}
	})
	return p
}
