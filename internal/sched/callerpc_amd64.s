// amd64 fast path for call-site capture: the Go compiler maintains RBP as
// a frame pointer on amd64, so the return address of the (never-inlined)
// op method that calls this helper sits at 8(BP) — the same value
// runtime.Callers would report for the caller's caller, at none of the
// unwinder's cost. See capturePC in callerpc_amd64.go for the invariants.

#include "textflag.h"

// func callerPC() uintptr
TEXT ·callerPC(SB), NOSPLIT|NOFRAME, $0-8
	MOVQ 8(BP), AX
	MOVQ AX, ret+0(FP)
	RET
