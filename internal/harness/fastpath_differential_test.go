package harness

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestHandoffDifferentialWorkloads runs every registered workload under
// the standard Collect battery (cooperative, round-robin quantum 1 and 5,
// two random seeds) with the fast one-hop handoff and again with the
// legacy two-hop protocol: the emitted schedules and traces must be
// byte-for-byte identical. Together with the 200-seed generated-program
// fuzz in internal/sched this is the schedule-identity guarantee for the
// handoff rewrite across the paper's real workloads.
func TestHandoffDifferentialWorkloads(t *testing.T) {
	strategies := func() []sched.Strategy {
		return []sched.Strategy{
			sched.Cooperative{},
			&sched.RoundRobin{Quantum: 1},
			&sched.RoundRobin{Quantum: 5},
			sched.NewRandom(1),
			sched.NewRandom(2),
		}
	}
	for _, spec := range workloads.All() {
		for si := range strategies() {
			label := fmt.Sprintf("%s/%s", spec.Name, strategies()[si].Name())
			run := func(legacy bool) (*sched.Result, error) {
				return sched.Run(spec.New(0, quickSize(spec)), sched.Options{
					Strategy:      strategies()[si],
					RecordTrace:   true,
					LegacyHandoff: legacy,
				})
			}
			fast, fastErr := run(false)
			legacy, legacyErr := run(true)
			if (fastErr == nil) != (legacyErr == nil) {
				t.Fatalf("%s: error presence differs: fast %v, legacy %v", label, fastErr, legacyErr)
			}
			if fastErr != nil && fastErr.Error() != legacyErr.Error() {
				t.Fatalf("%s: errors differ:\n fast   %v\n legacy %v", label, fastErr, legacyErr)
			}
			if len(fast.Schedule) != len(legacy.Schedule) {
				t.Fatalf("%s: schedule lengths differ: %d vs %d", label, len(fast.Schedule), len(legacy.Schedule))
			}
			for i := range fast.Schedule {
				if fast.Schedule[i] != legacy.Schedule[i] {
					t.Fatalf("%s: schedule diverges at event %d: T%d vs T%d",
						label, i, fast.Schedule[i], legacy.Schedule[i])
				}
			}
			for i := range fast.Trace.Events {
				fe, le := fast.Trace.Events[i], legacy.Trace.Events[i]
				if fe != le {
					t.Fatalf("%s: event %d differs: fast %+v, legacy %+v", label, i, fe, le)
				}
				if fn, ln := fast.Strings.Name(fe.Loc), legacy.Strings.Name(le.Loc); fn != ln {
					t.Fatalf("%s: event %d location differs: %q vs %q", label, i, fn, ln)
				}
			}
		}
	}
}

// quickSize shrinks the heavyweight workloads the same way Config.Quick
// does, keeping the differential sweep fast.
func quickSize(spec workloads.Spec) int {
	if spec.DefaultSize > 8 {
		return spec.DefaultSize / 4
	}
	return 0
}