// Package caplocal must fail translation: a goroutine closure captures a
// plain local of the enclosing function, which has no place in the
// runtime's slot model (only object identities may be captured).
package caplocal

import "sync"

func Run() {
	var wg sync.WaitGroup
	n := 0
	wg.Add(1)
	go func() {
		n++
		wg.Done()
	}()
	wg.Wait()
	_ = n
}
