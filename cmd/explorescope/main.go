// Command explorescope inspects flight-recorder recordings: it merges and
// filters recordings, converts between the Chrome trace_event JSON and the
// compact binary spill format, and prints a top-N phase attribution table.
//
// Input format is detected by suffix: .json is trace_event JSON, anything
// else is the binary spill format. The same rule picks the -o output
// format, so converting is just naming the other extension:
//
//	explorescope run.bin                    # attribution table
//	explorescope -top 5 -cat sched run.json # top 5 scheduler rows
//	explorescope -o merged.json a.bin b.bin # merge + convert for Perfetto
//	explorescope -name schedule -o sched.json run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs/flight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "explorescope:", err)
		os.Exit(2)
	}
}

// run is the whole command behind a testable seam: flags in, report out.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explorescope", flag.ContinueOnError)
	var (
		out     = fs.String("o", "", "write the merged/filtered recording here (.json = trace_event, else spill)")
		cat     = fs.String("cat", "", "filter: category (sched|run|pool|checker|harness|cli)")
		name    = fs.String("name", "", "filter: exact event name")
		from    = fs.Int64("from", 0, "filter: inclusive lower time bound, ns")
		to      = fs.Int64("to", 0, "filter: exclusive upper time bound, ns (0 = end)")
		top     = fs.Int("top", 20, "attribution rows to print (0 = all)")
		summary = fs.Bool("tracks", false, "print per-track event counts instead of attribution")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("at least one recording file is required")
	}

	recs := make([]flight.Recording, 0, fs.NArg())
	for _, path := range fs.Args() {
		rec, err := flight.ReadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	rec := recs[0]
	if len(recs) > 1 {
		rec = flight.Merge(recs...)
	}

	if *cat != "" || *name != "" || *from != 0 || *to != 0 {
		opts := flight.FilterOptions{Name: *name, From: *from, To: *to}
		if *cat != "" {
			c, ok := flight.CatByName(*cat)
			if !ok {
				return fmt.Errorf("unknown category %q (sched|run|pool|checker|harness|cli)", *cat)
			}
			opts.Cat, opts.CatSet = c, true
		}
		rec = rec.Filter(opts)
	}

	if *out != "" {
		if err := flight.WriteFile(*out, rec); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d events on %d tracks to %s\n", rec.Events(), len(rec.Tracks), *out)
		return nil
	}

	if *summary {
		printTracks(stdout, rec)
		return nil
	}
	printAttribution(stdout, rec, *top)
	return nil
}

func header(w io.Writer, rec flight.Recording, wall int64) {
	fmt.Fprintf(w, "flight recording: %d tracks, %d events, %d dropped, wall %v\n",
		len(rec.Tracks), rec.Events(), rec.Dropped, time.Duration(wall))
}

// printAttribution renders the top-N span attribution table: self and
// total time plus span count per (category, name), sorted by self time.
func printAttribution(w io.Writer, rec flight.Recording, top int) {
	rows, wall := rec.Attribution()
	header(w, rec, wall)
	if len(rows) == 0 {
		fmt.Fprintln(w, "no spans recorded")
		return
	}
	shown := rows
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	fmt.Fprintf(w, "%12s %12s %8s  %-8s %s\n", "self", "total", "count", "category", "name")
	for _, r := range shown {
		fmt.Fprintf(w, "%12v %12v %8d  %-8s %s\n",
			time.Duration(r.SelfNs), time.Duration(r.TotalNs), r.Count, r.Cat, r.Name)
	}
	if len(shown) != len(rows) {
		fmt.Fprintf(w, "(%d of %d rows shown)\n", len(shown), len(rows))
	}
}

// printTracks renders per-track event counts and time extents.
func printTracks(w io.Writer, rec flight.Recording) {
	_, wall := rec.Attribution()
	header(w, rec, wall)
	fmt.Fprintf(w, "%5s %8s %12s  %s\n", "tid", "events", "extent", "track")
	for _, t := range rec.Tracks {
		var extent int64
		if n := len(t.Events); n > 0 {
			lo, hi := t.Events[0].TS, t.Events[0].TS
			for _, e := range t.Events[1:] {
				if e.TS < lo {
					lo = e.TS
				}
				if e.TS > hi {
					hi = e.TS
				}
			}
			extent = hi - lo
		}
		fmt.Fprintf(w, "%5d %8d %12v  %s\n", t.ID, len(t.Events), time.Duration(extent), t.Name)
	}
}
