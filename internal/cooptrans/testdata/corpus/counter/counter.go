// Package counter is the lock-discipline half of the translation corpus:
// several workers bump a shared total under a mutex, joined by a local
// WaitGroup captured (by identity) in goroutine closures.
package counter

import "sync"

var (
	mu    sync.Mutex
	total int
	dirty int
)

func worker(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		total += 1
		mu.Unlock()
	}
}

// Run is the disciplined entry: all shared accesses are guarded.
func Run() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		worker(3)
		wg.Done()
	}()
	go func() {
		worker(3)
		wg.Done()
	}()
	wg.Wait()
}

// Racy seeds a lost-update race on dirty for the differential check: the
// dynamic checkers must flag it and the static pass must not claim the
// touching code.
func Racy() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		dirty = dirty + 1
		wg.Done()
	}()
	go func() {
		dirty = dirty + 1
		wg.Done()
	}()
	wg.Wait()
}
