package workloads

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/vsync"
)

// Barrier aliases the vsync cyclic barrier the grid workloads synchronize
// on; see vsync.Barrier for semantics.
type Barrier = vsync.Barrier

// NewBarrier declares a barrier's shared state on p.
func NewBarrier(p *sched.Program, name string, parties int) *Barrier {
	return vsync.NewBarrier(p, name, parties)
}

// Counter is a lock-protected shared counter used for task queues and
// reductions.
type Counter struct {
	m *sched.Mutex
	v *sched.Var
}

// NewCounter declares a counter's shared state on p.
func NewCounter(p *sched.Program, name string) *Counter {
	return &Counter{m: p.Mutex(name + ".m"), v: p.Var(name + ".v")}
}

// Next atomically returns the current value and increments it — the
// classic fetch-and-add work-queue idiom.
func (c *Counter) Next(t *sched.T) int64 {
	t.Acquire(c.m)
	v := t.Read(c.v)
	t.Write(c.v, v+1)
	t.Release(c.m)
	return v
}

// Add atomically adds delta.
func (c *Counter) Add(t *sched.T, delta int64) {
	t.Acquire(c.m)
	t.Write(c.v, t.Read(c.v)+delta)
	t.Release(c.m)
}

// Value reads the counter under its lock.
func (c *Counter) Value(t *sched.T) int64 {
	t.Acquire(c.m)
	v := t.Read(c.v)
	t.Release(c.m)
	return v
}

// lcg is a deterministic thread-local pseudo-random source; workloads must
// not use math/rand's global state (nondeterministic under scheduling).
type lcg uint64

func newLCG(seed int64) *lcg {
	l := lcg(uint64(seed)*6364136223846793005 + 1442695040888963407)
	return &l
}

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 16)
}

// intn returns a value in [0, n).
func (l *lcg) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(l.next() % uint64(n))
}

// forkWorkers forks n workers named prefix0..n-1, running body with the
// worker index, and returns their handles.
func forkWorkers(t *sched.T, n int, prefix string, body func(t *sched.T, id int)) []sched.Handle {
	hs := make([]sched.Handle, n)
	for i := 0; i < n; i++ {
		i := i
		hs[i] = t.Fork(fmt.Sprintf("%s%d", prefix, i), func(t *sched.T) { body(t, i) })
	}
	return hs
}

// joinAll joins every handle.
func joinAll(t *sched.T, hs []sched.Handle) {
	for _, h := range hs {
		t.Join(h)
	}
}
