package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden snapshots instead of comparing")

// The frozen trace under testdata/ was recorded once (bank workload,
// round-robin quantum 3, 3 workers, size 4) and is never regenerated:
// its location table is embedded in the file, so these goldens are immune
// to workload source-line drift and pin only tracedump's own rendering —
// stats summary, location-table dump, and location-resolved event output.
const frozenTrace = "testdata/bank_rr3.trc"

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func runCapture(t *testing.T, args ...string) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.Bytes()
}

func TestStatsGolden(t *testing.T) {
	checkGolden(t, "stats.golden", runCapture(t, "-i", frozenTrace))
}

func TestLocsGolden(t *testing.T) {
	checkGolden(t, "locs.golden", runCapture(t, "-i", frozenTrace, "-locs"))
}

func TestPrintGolden(t *testing.T) {
	checkGolden(t, "print.golden", runCapture(t, "-i", frozenTrace, "-print", "-to", "24"))
}

func TestPrintResolvesLocations(t *testing.T) {
	out := runCapture(t, "-i", frozenTrace, "-print", "-op", "acq")
	if !bytes.Contains(out, []byte("@workloads/bank.go:")) {
		t.Fatalf("acquire events missing resolved @file:line locations:\n%s", out)
	}
}

func TestUnknownInput(t *testing.T) {
	if err := run([]string{"-w", "no-such-workload"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error when neither -w nor -i given")
	}
}
