package workloads

import "repro/internal/sched"

func init() {
	register(Spec{
		Name:           "syncbench",
		Description:    "JGF section-1 style synchronization microbenchmark: barrier rounds + lock rounds + fork/join rounds",
		DefaultThreads: 4,
		DefaultSize:    6, // rounds per section
		Build:          buildSyncBench,
	})
}

// buildSyncBench mirrors the Java Grande section-1 microbenchmarks that
// stress the synchronization primitives themselves: a barrier section
// (every round is a full barrier cycle), a lock section (contended
// increment under one global lock), and a fork/join section (main
// repeatedly spawns and joins short-lived children). Fully annotated:
// every contended round ends in a yield, so the workload is cooperable and
// serves as the lower-bound datapoint for synchronization-dominated
// traces.
func buildSyncBench(threads, size int) *sched.Program {
	p := sched.NewProgram("syncbench")
	bar := NewBarrier(p, "bar", threads)
	counter := NewCounter(p, "counter")
	rounds := p.Var("forkRounds")

	p.SetMain(func(t *sched.T) {
		// Section 1: barrier rounds.
		hs := forkWorkers(t, threads, "barrier", func(t *sched.T, id int) {
			for r := 0; r < size; r++ {
				t.Call("bench.barrier", func() { bar.Await(t) })
				t.Yield()
			}
		})
		joinAll(t, hs)

		// Section 2: contended lock rounds.
		hs = forkWorkers(t, threads, "locker", func(t *sched.T, id int) {
			for r := 0; r < size; r++ {
				t.Call("bench.sync", func() { counter.Add(t, 1) })
				t.Yield()
			}
		})
		joinAll(t, hs)
		if counter.Value(t) != int64(threads*size) {
			panic("syncbench: lock section lost updates")
		}

		// Section 3: fork/join rounds.
		for r := 0; r < size; r++ {
			h := t.Fork("child", func(t *sched.T) {
				t.Call("bench.child", func() {
					// Purely local work; the cost under study is the
					// fork/join pair itself.
					acc := 0
					for i := 0; i < 8; i++ {
						acc += i
					}
					_ = acc
				})
			})
			t.Join(h)
			t.Write(rounds, t.Read(rounds)+1)
		}
		if t.Read(rounds) != int64(size) {
			panic("syncbench: fork/join rounds lost")
		}
	})
	return p
}
