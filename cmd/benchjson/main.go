// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON array (stdout), one object per benchmark line, keeping every
// value/unit pair (ns/op, B/op, allocs/op, custom metrics like events/s).
// `make bench` tees the raw text through it into BENCH_latest.json so runs
// can be diffed mechanically; the text form stays benchstat-compatible.
//
// With -compare it additionally diffs the parsed results against a
// committed baseline JSON (exit 1 on regression), which is what the CI
// regression gate runs:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson > BENCH_latest.json
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -compare BENCH_latest.json > /dev/null
//
// Comparison is per benchmark (matched by package+name) on one primary
// metric: events/s when both sides report it (higher is better), ns/op
// otherwise (lower is better). A change past -threshold (default 0.10,
// i.e. 10%) in the losing direction is a regression; benchmarks present on
// only one side are listed but never fail the run, so adding or removing a
// benchmark does not require regenerating the baseline in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func (r Result) key() string { return r.Package + "/" + r.Name }

// parseText reads `go test -bench` text output.
func parseText(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	out := []Result{} // encode as [] (not null) when nothing matches
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// primaryMetric picks the metric a pair of results is compared on.
// events/s is the throughput the fused-engine benchmarks exist to guard, so
// it wins when both sides have it; ns/op is the universal fallback.
func primaryMetric(old, new Result) (name string, higherIsBetter bool, ok bool) {
	if _, a := old.Metrics["events/s"]; a {
		if _, b := new.Metrics["events/s"]; b {
			return "events/s", true, true
		}
	}
	if _, a := old.Metrics["ns/op"]; a {
		if _, b := new.Metrics["ns/op"]; b {
			return "ns/op", false, true
		}
	}
	return "", false, false
}

// mergeBest collapses duplicate benchmark keys (from `go test -count=N`)
// into one best-of-N result: max for throughput metrics (.../s), min for
// everything else (ns/op, B/op, allocs/op). Best-of-N is the standard
// noise filter for regression gating on shared CI runners.
func mergeBest(in []Result) map[string]Result {
	out := map[string]Result{}
	for _, r := range in {
		k := r.key()
		prev, ok := out[k]
		if !ok {
			out[k] = r
			continue
		}
		for m, v := range r.Metrics {
			pv, seen := prev.Metrics[m]
			better := v < pv // lower is better by default
			if strings.HasSuffix(m, "/s") {
				better = v > pv
			}
			if !seen || better {
				prev.Metrics[m] = v
			}
		}
		out[k] = prev
	}
	return out
}

// compare diffs new against base and reports regressions past threshold.
// It writes a human-readable summary to w and returns the regressed lines.
func compare(w io.Writer, base, new []Result, threshold float64) []string {
	baseBy := mergeBest(base)
	newBy := mergeBest(new)
	keys := make([]string, 0, len(newBy))
	for k := range newBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions []string
	for _, k := range keys {
		nr := newBy[k]
		br, ok := baseBy[k]
		if !ok {
			fmt.Fprintf(w, "  new       %-60s (no baseline)\n", k)
			continue
		}
		metric, higher, ok := primaryMetric(br, nr)
		if !ok {
			fmt.Fprintf(w, "  skip      %-60s (no comparable metric)\n", k)
			continue
		}
		ov, nv := br.Metrics[metric], nr.Metrics[metric]
		if ov == 0 {
			continue
		}
		change := nv/ov - 1 // signed relative change in the metric
		verdict := "ok"
		regressed := false
		if higher {
			regressed = change < -threshold
		} else {
			regressed = change > threshold
		}
		if regressed {
			verdict = "REGRESSED"
		}
		line := fmt.Sprintf("%-9s %-60s %-10s %14.4g -> %14.4g  (%+.1f%%)",
			verdict, k, metric, ov, nv, change*100)
		fmt.Fprintln(w, " ", line)
		if regressed {
			regressions = append(regressions, line)
		}
	}
	for k := range baseBy {
		if _, ok := newBy[k]; !ok {
			fmt.Fprintf(w, "  removed   %-60s (in baseline only)\n", k)
		}
	}
	return regressions
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	compareWith := flag.String("compare", "", "baseline JSON file to compare against (exit 1 on regression)")
	threshold := flag.Float64("threshold", 0.10, "relative regression tolerance on the primary metric")
	flag.Parse()

	results, err := parseText(os.Stdin)
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fatal(err)
	}

	if *compareWith == "" {
		return
	}
	raw, err := os.ReadFile(*compareWith)
	if err != nil {
		fatal(err)
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", *compareWith, err))
	}
	fmt.Fprintf(os.Stderr, "benchjson: comparing %d benchmarks against %s (threshold %.0f%%)\n",
		len(results), *compareWith, *threshold*100)
	regressions := compare(os.Stderr, base, results, *threshold)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%:\n", len(regressions), *threshold*100)
		for _, l := range regressions {
			fmt.Fprintln(os.Stderr, " ", l)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchjson: no regressions")
}
