// Package cooptrans translates real Go packages into the virtual-thread
// runtime, so the dynamic checker battery can run on ordinary source
// instead of hand-written sched programs.
//
// The translator reuses internal/static's loader and call-recognition
// tables (the exported seam in static/seams.go), compiles goroutine
// bodies, sync primitives, channel operations, and shared-variable
// accesses into a small tree-walking IR, and packages each niladic
// top-level function as one sched.Program. Object names follow the
// static pass's key abstraction and every effectful IR node carries its
// original "dir/file.go:line" location, so translated traces, static
// findings, and dynamic findings all speak one coordinate system — the
// property the three-way differential harness checks.
//
// Translation is total over its input subset and explicit outside it:
// untranslatable constructs (reflection, cgo, recursion, goto, dynamic
// channel identities, goroutine-captured locals, exotic shared types,
// unknown calls) produce positioned Diagnostics, never panics and never
// silently wrong programs.
package cooptrans

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/sched"
	"repro/internal/static"
)

// Unit is one translated entry point, buildable into a runnable program.
type Unit struct {
	// Name is the program name, "pkg.Entry".
	Name string `json:"name"`
	// Entry is the original entry function's name.
	Entry string `json:"entry"`
	// Loc is the entry function's declaration site.
	Loc string `json:"loc"`
	// Objects maps translated object names to their declaration sites —
	// the unit's source map, object side.
	Objects map[string]string `json:"objects,omitempty"`

	ir *irProgram
}

// Build constructs a fresh immutable sched.Program for this unit. The
// program may be run or explored concurrently; all mutable interpreter
// state is per-run.
func (u *Unit) Build() *sched.Program { return u.ir.Build() }

// Translation is the result of translating one package directory.
type Translation struct {
	Dir     string `json:"dir"`
	Package string `json:"package"`
	// Units are the successfully translated entry points.
	Units []*Unit `json:"units"`
	// Diags are the positioned reasons any construct or entry did not
	// translate. A package with Diags may still have usable Units: each
	// entry stands or falls on the constructs it reaches.
	Diags []Diagnostic `json:"diags,omitempty"`
	// Skipped names entry functions dropped because compiling them hit
	// diagnostics.
	Skipped []string `json:"skipped,omitempty"`
	// Warnings are the loader's collected type-check/import errors.
	Warnings []string `json:"warnings,omitempty"`
}

// OK reports whether every discovered entry translated cleanly.
func (t *Translation) OK() bool { return len(t.Diags) == 0 && len(t.Units) > 0 }

// Translate loads and translates the package rooted at dir. The returned
// error covers only load-level failures (unreadable directory, no Go
// files); everything else is expressed as Diagnostics.
func Translate(dir string) (*Translation, error) {
	u, err := static.Load([]string{dir})
	if err != nil {
		return nil, err
	}
	pkg := u.Pkgs[0]
	out := &Translation{Dir: pkg.Dir, Package: pkg.Name, Warnings: u.Warnings}

	tr := &translator{
		u:        u,
		pkg:      pkg,
		groups:   map[types.Object]*group{},
		volPaths: map[string]bool{},
		funcs:    map[string]*irFunc{},
		stack:    map[string]bool{},
		nameSeq:  map[string]int{},
		groupIDs: map[*group]int{},
	}
	tr.discover()

	entries := entryFuncs(pkg)
	if len(entries) == 0 {
		tr.diagAt(pkg.Files[0].Package, CodeNoEntry,
			"package %s has no niladic top-level function to use as an entry point", pkg.Name)
	}
	for _, fd := range entries {
		before := len(tr.diags)
		fobj, _ := u.Info.Defs[fd.Name].(*types.Func)
		if fobj == nil {
			continue
		}
		fn, _, ok := tr.compileFn(&funcRef{obj: fobj}, nil, fd.Pos())
		if !ok || len(tr.diags) > before {
			out.Skipped = append(out.Skipped, fd.Name.Name)
			continue
		}
		objs := append([]objDecl(nil), tr.objs...)
		objMap := make(map[string]string, len(objs))
		for _, d := range objs {
			objMap[d.name] = d.loc
		}
		out.Units = append(out.Units, &Unit{
			Name:    pkg.Name + "." + fd.Name.Name,
			Entry:   fd.Name.Name,
			Loc:     tr.loc(fd.Pos()),
			Objects: objMap,
			ir: &irProgram{
				name:    pkg.Name + "." + fd.Name.Name,
				entryFn: fd.Name.Name,
				loc:     tr.loc(fd.Pos()),
				objs:    objs,
				entry:   fn,
				funcs:   append([]*irFunc(nil), tr.order...),
			},
		})
	}
	out.Diags = dedupeDiags(tr.diags)
	return out, nil
}

// entryFuncs returns the package's entry points in declaration order:
// exported niladic top-level functions (no receiver, no parameters, no
// results). Unexported helpers are reachable only through entries, so
// running them standalone would misrepresent the package's concurrency.
func entryFuncs(pkg *static.LoadedPackage) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() != 0 {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}

// String renders a unit for diagnostics.
func (u *Unit) String() string { return fmt.Sprintf("%s (%s)", u.Name, u.Loc) }
