package atom

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestAtomicCriticalSectionAccepted(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin().Acq(10).Read(1).Write(1).Rel(10).AtomicEnd().End()
	b.On(1).Begin().Acq(10).Write(1).Rel(10).End()
	c := Analyze(b.Trace(), Options{})
	if !c.Atomic() {
		t.Fatalf("violations: %v", c.Violations())
	}
	if c.Blocks() != 1 {
		t.Fatalf("Blocks = %d", c.Blocks())
	}
}

func TestLockCoupledBlockViolates(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin().At("a.go:1").Acq(10).At("a.go:2").Rel(10).At("a.go:3").Acq(10).At("a.go:4").Rel(10).AtomicEnd().End()
	b.On(1).Begin().End()
	c := Analyze(b.Trace(), Options{})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
	v := c.Violations()[0]
	if v.Event.Op != trace.OpAcquire || v.Blocking {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "atomicity violation") {
		t.Errorf("String() = %q", v.String())
	}
}

func TestOutsideBlocksUnchecked(t *testing.T) {
	// The same lock-coupled pattern outside any atomic block is fine for
	// the atomicity checker (this is what cooperability checks instead).
	b := trace.NewBuilder()
	b.On(0).Begin().Acq(10).Rel(10).Acq(10).Rel(10).End()
	b.On(1).Begin().End()
	c := Analyze(b.Trace(), Options{})
	if !c.Atomic() {
		t.Fatalf("violations: %v", c.Violations())
	}
}

func TestWaitInsideAtomicBlocks(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().Acq(10).AtomicBegin().At("w.go:9").Wait(10)
	b.On(1).Begin().Acq(10).Notify(10).Rel(10).End()
	b.On(0).Acq(10).AtomicEnd().Rel(10).End()
	c := Analyze(b.Trace(), Options{})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
	if !c.Violations()[0].Blocking {
		t.Fatalf("violation should be blocking: %+v", c.Violations()[0])
	}
	if !strings.Contains(c.Violations()[0].String(), "blocks inside") {
		t.Errorf("String() = %q", c.Violations()[0].String())
	}
}

func TestYieldInsideAtomicBlocks(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin().At("y.go:3").Yield().AtomicEnd().End()
	c := Analyze(b.Trace(), Options{})
	if len(c.Violations()) != 1 || !c.Violations()[0].Blocking {
		t.Fatalf("violations = %v", c.Violations())
	}
}

func TestMethodsAtomicMode(t *testing.T) {
	// A method doing two disjoint critical sections: benign under
	// cooperability-with-a-yield, but a violation when methods are assumed
	// atomic — the comparison the paper draws.
	b := trace.NewBuilder()
	b.On(0).Begin().Enter(1).At("m.go:1").Acq(10).At("m.go:2").Rel(10).At("m.go:3").Acq(10).At("m.go:4").Rel(10).Exit(1).End()
	b.On(1).Begin().End()
	if c := Analyze(b.Trace(), Options{}); !c.Atomic() {
		t.Fatalf("without MethodsAtomic: %v", c.Violations())
	}
	c := Analyze(b.Trace(), Options{MethodsAtomic: true})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
	if c.Blocks() != 1 {
		t.Fatalf("Blocks = %d", c.Blocks())
	}
}

func TestNestedBlocksFlattened(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin().AtomicBegin().Acq(10).Rel(10).AtomicEnd().Acq(10).Rel(10).AtomicEnd().End()
	b.On(1).Begin().End()
	c := Analyze(b.Trace(), Options{})
	// The outer block spans both critical sections: one violation.
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
	if c.Blocks() != 1 {
		t.Fatalf("Blocks = %d, want 1 (outermost only)", c.Blocks())
	}
}

func TestTwoRacyAccessesInBlockViolate(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin()
	b.On(1).Begin().Write(1).Write(2).End() // make vars racy
	b.On(0).AtomicBegin().At("r.go:1").Write(1).At("r.go:2").Write(2).AtomicEnd().End()
	c := Analyze(b.Trace(), Options{KnownRaces: map[uint64]bool{1: true, 2: true}})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
}

func TestOneReportPerBlockInstance(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin()
	b.At("p.go:1").Acq(10).At("p.go:2").Rel(10)
	b.At("p.go:3").Acq(11).At("p.go:4").Rel(11)
	b.At("p.go:5").Acq(12).At("p.go:6").Rel(12)
	b.AtomicEnd().End()
	b.On(1).Begin().End()
	c := Analyze(b.Trace(), Options{})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1 per block instance", c.Violations())
	}
}

func TestForkJoinInsideBlockPureLipton(t *testing.T) {
	// With the pure Lipton policy, fork is a left mover (commit) and join
	// a right mover: fork-then-join inside one atomic block violates.
	b := trace.NewBuilder()
	b.On(0).Begin().AtomicBegin().At("f.go:1").Fork(1)
	b.On(1).Begin().End()
	b.On(0).At("f.go:2").Join(1).AtomicEnd().End()
	c := Analyze(b.Trace(), Options{})
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want 1", c.Violations())
	}
	v := c.Violations()[0]
	if v.Event.Op != trace.OpJoin {
		t.Fatalf("violation = %+v, want join after fork-commit", v)
	}
}

func TestEventsCount(t *testing.T) {
	b := trace.NewBuilder()
	b.Begin().AtomicBegin().Read(1).AtomicEnd().End()
	c := Analyze(b.Trace(), Options{})
	if c.Events() != 5 {
		t.Fatalf("Events = %d", c.Events())
	}
}

func BenchmarkAtomizerMethodsAtomic(b *testing.B) {
	bld := trace.NewBuilder()
	bld.On(0).Begin()
	bld.On(1).Begin()
	for i := 0; i < 300; i++ {
		tid := trace.TID(i % 2)
		bld.On(tid).Enter(1).Acq(10).Read(1).Write(1).Rel(10).Exit(1)
	}
	bld.On(1).End()
	bld.On(0).End()
	tr := bld.Trace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(tr, Options{MethodsAtomic: true})
	}
}
