package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// Strategy decides where context switches happen and which thread runs
// next. The scheduler calls Preempt after every instrumented event of the
// running thread; when it returns true — or when the running thread blocks
// or terminates — the scheduler calls Pick to choose the next thread.
//
// Strategies are stateful and single-run; Run calls Reset before execution.
type Strategy interface {
	// Name identifies the strategy (recorded in trace metadata).
	Name() string
	// Seed returns the randomization seed, or 0 for deterministic strategies.
	Seed() int64
	// Reset restores initial state before a run.
	Reset()
	// Preempt reports whether to take the baton away after event e.
	Preempt(e trace.Event) bool
	// Pick chooses among the runnable thread ids (sorted ascending).
	// current is the last thread that ran, or -1 at the start; it may or
	// may not be in runnable. Returning an id not in runnable aborts the
	// run with ErrReplayDiverged.
	Pick(runnable []trace.TID, current trace.TID) trace.TID
}

// SelectChooser is an optional Strategy extension: the runtime consults it
// whenever a select commits a case, passing the ready case indices in
// ascending order. Returning an index outside ready aborts the run with
// ErrReplayDiverged. Strategies that do not implement it commit the lowest
// ready index — deterministic, but blind to select nondeterminism; Random
// randomizes the choice, Guided records it as a choice point the explorers
// branch on, and Replay forces a recorded choice sequence.
type SelectChooser interface {
	Choose(ready []int) int
}

// Cooperative schedules context switches only at yield points (yields,
// waits, joins, thread boundaries) and otherwise lets the current thread
// run on. This is the paper's cooperative semantics: an execution under
// this strategy is yield-respecting by construction.
type Cooperative struct{}

// Name implements Strategy.
func (Cooperative) Name() string { return "cooperative" }

// Seed implements Strategy.
func (Cooperative) Seed() int64 { return 0 }

// Reset implements Strategy.
func (Cooperative) Reset() {}

// Preempt implements Strategy: switch only at yield points.
func (Cooperative) Preempt(e trace.Event) bool { return e.Op.IsYieldPoint() }

// Pick implements Strategy: keep running the current thread when possible,
// otherwise take the lowest runnable id (deterministic).
func (Cooperative) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	if containsTID(runnable, current) {
		return current
	}
	return runnable[0]
}

// RoundRobin preempts the running thread every Quantum events and rotates
// through runnable threads in id order. A quantum of 1 switches after every
// single operation — the most adversarial deterministic schedule.
type RoundRobin struct {
	// Quantum is the number of events a thread runs before being preempted.
	// Values below 1 are treated as 1.
	Quantum int

	sinceSwitch int
}

// Name implements Strategy.
func (s *RoundRobin) Name() string { return fmt.Sprintf("roundrobin(q=%d)", s.quantum()) }

// Seed implements Strategy.
func (s *RoundRobin) Seed() int64 { return 0 }

// Reset implements Strategy.
func (s *RoundRobin) Reset() { s.sinceSwitch = 0 }

func (s *RoundRobin) quantum() int {
	if s.Quantum < 1 {
		return 1
	}
	return s.Quantum
}

// Preempt implements Strategy.
func (s *RoundRobin) Preempt(e trace.Event) bool {
	s.sinceSwitch++
	if s.sinceSwitch >= s.quantum() {
		s.sinceSwitch = 0
		return true
	}
	return false
}

// Pick implements Strategy: the next runnable id after current, cyclically.
func (s *RoundRobin) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	for _, id := range runnable {
		if id > current {
			return id
		}
	}
	return runnable[0]
}

// Random is the seeded preemptive strategy used for violation hunting: at
// each event it preempts with probability P and picks uniformly among
// runnable threads. Distinct seeds explore distinct interleavings, and a
// given seed is fully reproducible.
type Random struct {
	// SeedVal seeds the generator.
	SeedVal int64
	// P is the per-event preemption probability; values outside (0,1]
	// default to 0.25.
	P float64

	rng *rand.Rand
}

// NewRandom returns a Random strategy with the default preemption
// probability.
func NewRandom(seed int64) *Random { return &Random{SeedVal: seed} }

// Name implements Strategy.
func (s *Random) Name() string { return fmt.Sprintf("random(p=%g)", s.prob()) }

// Seed implements Strategy.
func (s *Random) Seed() int64 { return s.SeedVal }

// Reset implements Strategy.
func (s *Random) Reset() { s.rng = rand.New(rand.NewSource(s.SeedVal)) }

func (s *Random) prob() float64 {
	if s.P <= 0 || s.P > 1 {
		return 0.25
	}
	return s.P
}

// Preempt implements Strategy.
func (s *Random) Preempt(e trace.Event) bool { return s.rng.Float64() < s.prob() }

// Pick implements Strategy.
func (s *Random) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	return runnable[s.rng.Intn(len(runnable))]
}

// Choose implements SelectChooser: uniform among the ready cases.
func (s *Random) Choose(ready []int) int {
	return ready[s.rng.Intn(len(ready))]
}

// PCT implements a simplified probabilistic concurrency testing scheduler
// (Burckhardt et al.): threads get random priorities, the highest-priority
// runnable thread always runs, and Depth-1 random change points demote the
// running thread, forcing rare orderings with provable probability bounds.
type PCT struct {
	// SeedVal seeds priority and change-point selection.
	SeedVal int64
	// Depth is the bug depth d; d-1 change points are used. Minimum 1.
	Depth int
	// ExpectedEvents scales change-point placement; defaults to 10000.
	ExpectedEvents int

	rng         *rand.Rand
	prio        map[trace.TID]int
	nextPrio    int
	changeAt    map[int]bool
	eventCount  int
	demoteFloor int
}

// Name implements Strategy.
func (s *PCT) Name() string { return fmt.Sprintf("pct(d=%d)", s.depth()) }

// Seed implements Strategy.
func (s *PCT) Seed() int64 { return s.SeedVal }

func (s *PCT) depth() int {
	if s.Depth < 1 {
		return 1
	}
	return s.Depth
}

// Reset implements Strategy.
func (s *PCT) Reset() {
	s.rng = rand.New(rand.NewSource(s.SeedVal))
	s.prio = make(map[trace.TID]int)
	s.nextPrio = 1 << 20
	s.changeAt = make(map[int]bool)
	s.eventCount = 0
	s.demoteFloor = 0
	n := s.ExpectedEvents
	if n <= 0 {
		n = 10000
	}
	for i := 0; i < s.depth()-1; i++ {
		s.changeAt[s.rng.Intn(n)] = true
	}
}

// Preempt implements Strategy: PCT needs a scheduling decision at every
// step because a higher-priority thread may have become runnable.
func (s *PCT) Preempt(e trace.Event) bool {
	s.eventCount++
	return true
}

// Pick implements Strategy: highest priority runnable; change points demote
// the current thread below every other priority.
func (s *PCT) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	for _, id := range runnable {
		if _, ok := s.prio[id]; !ok {
			// New threads get a random high priority below previously
			// assigned ones, as in PCT's initial priority assignment.
			s.prio[id] = s.nextPrio - s.rng.Intn(1024) - 1
			s.nextPrio = s.prio[id]
		}
	}
	if s.changeAt[s.eventCount] && current >= 0 {
		delete(s.changeAt, s.eventCount)
		s.demoteFloor--
		s.prio[current] = s.demoteFloor
	}
	best := runnable[0]
	for _, id := range runnable[1:] {
		if s.prio[id] > s.prio[best] {
			best = id
		}
	}
	return best
}

// Replay forces an exact previously observed schedule: the i-th event must
// be executed by Schedule[i]. Replaying a feasible schedule of a
// deterministic program reproduces its trace bit-for-bit.
type Replay struct {
	// Schedule is the per-event thread order, e.g. Result.Schedule.
	Schedule []trace.TID
	// Choices optionally forces the recorded select decisions
	// (Result.Choices) in commit order. Without it, replayed selects
	// commit the lowest ready index, which diverges when the original run
	// chose differently among simultaneously ready cases.
	Choices []int

	cursor    int
	choiceCur int
}

// NewReplay returns a Replay strategy over a recorded schedule.
func NewReplay(schedule []trace.TID) *Replay { return &Replay{Schedule: schedule} }

// NewReplayChoices returns a Replay strategy that also forces the recorded
// select decisions (use Result.Schedule and Result.Choices).
func NewReplayChoices(schedule []trace.TID, choices []int) *Replay {
	return &Replay{Schedule: schedule, Choices: choices}
}

// Name implements Strategy.
func (s *Replay) Name() string { return "replay" }

// Seed implements Strategy.
func (s *Replay) Seed() int64 { return 0 }

// Reset implements Strategy.
func (s *Replay) Reset() { s.cursor, s.choiceCur = 0, 0 }

// Preempt implements Strategy: reconsider after every event.
func (s *Replay) Preempt(e trace.Event) bool {
	s.cursor++
	return true
}

// Pick implements Strategy: the scheduled thread for the next event. If the
// schedule is exhausted, fall back to the lowest runnable id so a replayed
// prefix can be extended deterministically.
func (s *Replay) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	if s.cursor < len(s.Schedule) {
		return s.Schedule[s.cursor]
	}
	if containsTID(runnable, current) {
		return current
	}
	return runnable[0]
}

// Choose implements SelectChooser: the recorded decision while the
// sequence lasts (a recorded choice that is no longer ready aborts the run
// with ErrReplayDiverged), then the lowest ready index.
func (s *Replay) Choose(ready []int) int {
	if s.choiceCur < len(s.Choices) {
		c := s.Choices[s.choiceCur]
		s.choiceCur++
		return c
	}
	return ready[0]
}

// Guided follows a sequence of decision-point choices and then continues
// like Cooperative's deterministic policy, preferring to keep the current
// thread running. Unlike Replay (one decision per event), Guided makes one
// decision per *scheduling point*, which is what the exhaustive explorer
// enumerates. It records every decision it takes.
type Guided struct {
	// Prefix holds forced choices for the first scheduling points.
	Prefix []trace.TID

	cursor int
	events int
	// Points records (runnable set, choice) at every scheduling point.
	Points []ChoicePoint
}

// ChoicePoint is one scheduling decision: what was runnable and what ran.
// For select decisions (Select true) the "runnable" set holds the ready
// case *indices* and Current is -1, so the explorers' alternative
// expansion and preemption accounting apply unchanged (a select branch
// never costs a preemption).
type ChoicePoint struct {
	Runnable []trace.TID
	Chosen   trace.TID
	Current  trace.TID
	// EventIdx is the number of events already executed when the decision
	// was taken, i.e. the index of the next event. Several points may share
	// an EventIdx when picked threads block without emitting; the last one
	// scheduled the thread that produced the event.
	EventIdx int
	// Select marks a select-case decision rather than a thread pick.
	Select bool
}

// Name implements Strategy.
func (s *Guided) Name() string { return "guided" }

// Seed implements Strategy.
func (s *Guided) Seed() int64 { return 0 }

// Reset implements Strategy.
func (s *Guided) Reset() {
	s.cursor = 0
	s.events = 0
	s.Points = nil
}

// Preempt implements Strategy: every event is a scheduling point, so the
// explorer can consider a switch anywhere.
func (s *Guided) Preempt(e trace.Event) bool {
	s.events++
	return true
}

// Pick implements Strategy.
func (s *Guided) Pick(runnable []trace.TID, current trace.TID) trace.TID {
	var choice trace.TID
	if s.cursor < len(s.Prefix) {
		choice = s.Prefix[s.cursor]
	} else if containsTID(runnable, current) {
		choice = current
	} else {
		choice = runnable[0]
	}
	s.cursor++
	cp := ChoicePoint{Runnable: append([]trace.TID(nil), runnable...), Chosen: choice, Current: current, EventIdx: s.events}
	sort.Slice(cp.Runnable, func(i, j int) bool { return cp.Runnable[i] < cp.Runnable[j] })
	s.Points = append(s.Points, cp)
	return choice
}

// Choose implements SelectChooser. Select decisions share the Prefix
// stream with Pick — each consumes one slot — so a forced prefix replays
// the identical decision sequence whether a slot lands on a thread pick or
// a select commit. Unforced selects take the lowest ready index
// (deterministic, mirroring Pick's current-then-lowest policy).
func (s *Guided) Choose(ready []int) int {
	choice := ready[0]
	if s.cursor < len(s.Prefix) {
		choice = int(s.Prefix[s.cursor])
	}
	s.cursor++
	cp := ChoicePoint{Runnable: make([]trace.TID, len(ready)), Chosen: trace.TID(choice), Current: -1, EventIdx: s.events, Select: true}
	for i, r := range ready {
		cp.Runnable[i] = trace.TID(r)
	}
	s.Points = append(s.Points, cp)
	return choice
}
