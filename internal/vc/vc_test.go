package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsValid(t *testing.T) {
	var v VC
	if got := v.Get(3); got != 0 {
		t.Fatalf("Get on nil VC = %d, want 0", got)
	}
	if !v.Leq(New(4)) {
		t.Fatal("nil VC should be ≤ any clock")
	}
	if v.String() != "[]" {
		t.Fatalf("nil VC String = %q", v.String())
	}
}

func TestSetAndGet(t *testing.T) {
	v := New(2)
	v = v.Set(5, 7)
	if got := v.Get(5); got != 7 {
		t.Fatalf("Get(5) = %d, want 7", got)
	}
	if got := v.Get(4); got != 0 {
		t.Fatalf("Get(4) = %d, want 0", got)
	}
	if got := v.Get(-1); got != 0 {
		t.Fatalf("Get(-1) = %d, want 0", got)
	}
}

func TestTick(t *testing.T) {
	var v VC
	v = v.Tick(2)
	v = v.Tick(2)
	v = v.Tick(0)
	if v.Get(2) != 2 || v.Get(0) != 1 || v.Get(1) != 0 {
		t.Fatalf("unexpected clock after ticks: %v", v)
	}
}

func TestJoinPointwiseMax(t *testing.T) {
	a := VC{3, 0, 5}
	b := VC{1, 4}
	a = a.Join(b)
	want := VC{3, 4, 5}
	if !a.Equal(want) {
		t.Fatalf("join = %v, want %v", a, want)
	}
}

func TestJoinGrows(t *testing.T) {
	a := VC{1}
	b := VC{0, 0, 0, 9}
	a = a.Join(b)
	if a.Get(3) != 9 {
		t.Fatalf("join did not grow: %v", a)
	}
}

func TestLeqAndConcurrent(t *testing.T) {
	a := VC{1, 2}
	b := VC{2, 2}
	c := VC{0, 3}
	if !a.Leq(b) {
		t.Error("a ≤ b expected")
	}
	if b.Leq(a) {
		t.Error("b ≤ a unexpected")
	}
	if !a.Concurrent(c) {
		t.Error("a ∥ c expected")
	}
	if a.Concurrent(a) {
		t.Error("a ∥ a unexpected")
	}
}

func TestEqualIgnoresTrailingZeros(t *testing.T) {
	a := VC{1, 2, 0, 0}
	b := VC{1, 2}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("%v and %v should be equal", a, b)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := VC{1, 2, 3}
	b := a.Copy()
	b = b.Tick(0)
	if a.Get(0) != 1 {
		t.Fatal("Copy aliases original storage")
	}
	if (VC)(nil).Copy() != nil {
		t.Fatal("Copy of nil should be nil")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 2, 0}).String(); got != "[1 0 2]" {
		t.Fatalf("String = %q", got)
	}
}

func TestEpochPacking(t *testing.T) {
	for _, tc := range []struct {
		tid int
		c   Clock
	}{{0, 0}, {1, 1}, {255, 1 << 30}, {1 << 20, 42}} {
		e := MakeEpoch(tc.tid, tc.c)
		if e.Tid() != tc.tid || e.Clock() != tc.c {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", tc.tid, tc.c, e.Tid(), e.Clock())
		}
	}
}

func TestNoEpoch(t *testing.T) {
	if !NoEpoch.LeqVC(nil) {
		t.Fatal("NoEpoch must be ≤ every clock")
	}
	if NoEpoch.String() != "⊥" {
		t.Fatalf("NoEpoch String = %q", NoEpoch.String())
	}
}

func TestEpochLeqVC(t *testing.T) {
	e := MakeEpoch(1, 5)
	if e.LeqVC(VC{0, 4}) {
		t.Error("5@1 ≤ [0 4] unexpected")
	}
	if !e.LeqVC(VC{0, 5}) {
		t.Error("5@1 ≤ [0 5] expected")
	}
	if !e.LeqVC(VC{9, 6, 1}) {
		t.Error("5@1 ≤ [9 6 1] expected")
	}
}

func TestEpochString(t *testing.T) {
	if got := MakeEpoch(3, 17).String(); got != "17@3" {
		t.Fatalf("String = %q", got)
	}
}

// randVC builds a bounded random clock for property tests.
func randVC(r *rand.Rand) VC {
	n := r.Intn(6)
	v := New(n)
	for i := range v {
		v[i] = Clock(r.Intn(8))
	}
	return v
}

func TestPropJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r), randVC(r)
		j := a.Copy().Join(b)
		// Upper bound.
		if !a.Leq(j) || !b.Leq(j) {
			return false
		}
		// Least: any other upper bound dominates j.
		u := a.Copy().Join(b).Join(randVC(r))
		return j.Leq(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropJoinCommutativeAssociativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		ab := a.Copy().Join(b)
		ba := b.Copy().Join(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := a.Copy().Join(b).Join(c)
		abc2 := a.Copy().Join(b.Copy().Join(c))
		if !abc1.Equal(abc2) {
			return false
		}
		return a.Copy().Join(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropLeqPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r), randVC(r), randVC(r)
		if !a.Leq(a) { // reflexive
			return false
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) { // antisymmetric
			return false
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) { // transitive
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropEpochAgreesWithSingletonVC(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tid := r.Intn(4)
		c := Clock(r.Intn(8))
		v := randVC(r)
		e := MakeEpoch(tid, c)
		asVC := New(tid+1).Set(tid, c)
		return e.LeqVC(v) == asVC.Leq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJoin(b *testing.B) {
	a := New(16)
	u := New(16)
	for i := range u {
		u[i] = Clock(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a = a.Join(u)
	}
}

func BenchmarkEpochLeqVC(b *testing.B) {
	v := New(16).Set(7, 100)
	e := MakeEpoch(7, 50)
	for i := 0; i < b.N; i++ {
		if !e.LeqVC(v) {
			b.Fatal("unexpected")
		}
	}
}

func TestCopyInto(t *testing.T) {
	src := New(4).Set(0, 3).Set(2, 7)
	// Into nil: allocates.
	dst := src.CopyInto(nil)
	if !dst.Equal(src) || len(dst) != len(src) {
		t.Fatalf("CopyInto(nil) = %v, want %v", dst, src)
	}
	// Into a larger buffer: reuses storage and truncates.
	big := New(10).Set(9, 99)
	out := src.CopyInto(big)
	if !out.Equal(src) || len(out) != len(src) {
		t.Fatalf("CopyInto(big) = %v, want %v", out, src)
	}
	if &out[0] != &big[0] {
		t.Fatal("CopyInto should reuse the destination's backing array")
	}
	// Mutating the copy must not alias the source.
	out = out.Tick(0)
	if src.Get(0) != 3 {
		t.Fatal("CopyInto result aliases the source")
	}
	// Into a smaller-capacity buffer: reallocates correctly.
	small := make(VC, 1)
	out2 := src.CopyInto(small)
	if !out2.Equal(src) {
		t.Fatalf("CopyInto(small) = %v, want %v", out2, src)
	}
}

func TestJoinInto(t *testing.T) {
	acc := New(3).Set(0, 5)
	u := New(3).Set(0, 2).Set(2, 9)
	got := u.JoinInto(acc)
	want := New(3).Set(0, 5).Set(2, 9)
	if !got.Equal(want) {
		t.Fatalf("JoinInto = %v, want %v", got, want)
	}
	if &got[0] != &acc[0] {
		t.Fatal("JoinInto should reuse the destination's backing array")
	}
}
