// Package dsl is a static-analysis test corpus over the virtual runtime:
// each function exercises one verdict class.
package dsl

import "repro/internal/sched"

// BuildGuarded is fully lock-disciplined: every access to x happens under
// m, so bump is yield-free cooperable.
func BuildGuarded() *sched.Program {
	p := sched.NewProgram("guarded")
	m := p.Mutex("m")
	x := p.Var("x")
	p.SetMain(func(t *sched.T) {
		h1 := t.Fork("w1", func(t *sched.T) { bump(t, m, x) })
		h2 := t.Fork("w2", func(t *sched.T) { bump(t, m, x) })
		t.Join(h1)
		t.Join(h2)
	})
	return p
}

func bump(t *sched.T, m *sched.Mutex, x *sched.Var) {
	t.Acquire(m)
	t.Write(x, t.Read(x)+1)
	t.Release(m)
}

// BuildRacy runs racer from two threads with no locks: the second write
// is a non mover after a committed non mover, so racer needs a yield.
func BuildRacy() *sched.Program {
	p := sched.NewProgram("racy")
	x := p.Var("x")
	y := p.Var("y")
	p.SetMain(func(t *sched.T) {
		h := t.Fork("w", func(t *sched.T) { racer(t, x, y) })
		racer(t, x, y)
		t.Join(h)
	})
	return p
}

func racer(t *sched.T, x, y *sched.Var) {
	t.Write(x, 1)
	t.Write(y, 2)
}

// BuildYielding is the repaired racy program: an explicit yield separates
// the two commits, so polite is cooperable (but not yield-free).
func BuildYielding() *sched.Program {
	p := sched.NewProgram("yielding")
	x := p.Var("x")
	y := p.Var("y")
	p.SetMain(func(t *sched.T) {
		h := t.Fork("w", func(t *sched.T) { polite(t, x, y) })
		polite(t, x, y)
		t.Join(h)
	})
	return p
}

func polite(t *sched.T, x, y *sched.Var) {
	t.Write(x, 1)
	t.Yield()
	t.Write(y, 2)
}

// Weird uses goto, which the abstract interpreter does not model: the
// verdict must be unknown, never a cooperability claim.
func Weird(t *sched.T, x *sched.Var) {
	i := 0
loop:
	t.Write(x, 1)
	i++
	if i < 3 {
		goto loop
	}
}

// WithLockHeld uses the scoped-lock helper; the closure body runs under
// the mutex, so the whole function is yield-free.
func WithLockHeld(t *sched.T, m *sched.Mutex, x *sched.Var) {
	t.WithLock(m, func() {
		t.Write(x, t.Read(x)+1)
	})
}
