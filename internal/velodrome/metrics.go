package velodrome

import "repro/internal/obs"

// Pre-resolved handles on the obs.Default registry. Velodrome's graph
// state is already counted by the hot path (node/edge arena lengths,
// transaction blocks), so FlushMetrics publishes it without any new
// per-event work (DESIGN.md "Observability").
var (
	mCheckerEvents = obs.Default.Counter("checker.events")
	mEvents        = obs.Default.Counter("checker.velodrome.events")
	mNodes         = obs.Default.Counter("checker.velodrome.nodes")
	mEdges         = obs.Default.Counter("checker.velodrome.edges")
	mBlocks        = obs.Default.Counter("checker.velodrome.blocks")
	mViolations    = obs.Default.Counter("checker.velodrome.violations")
)

// flushedCounts remembers what FlushMetrics already published so repeated
// flushes only add deltas.
type flushedCounts struct {
	events, nodes, edges, blocks, violations int
}

// FlushMetrics publishes the checker's telemetry to the obs registry and
// remembers what it flushed, so calling it again only adds the delta.
// Analyze calls it automatically (including the violation count).
//
// Every field is delta-tracked — including violations, which used to be
// added in full on every call, double-counting when the fused pipeline
// flushes both per batch window and at the end of the analysis. The obs
// contract (DESIGN.md "Observability") is that a checker's counters reflect
// each analysis exactly once no matter how many times it flushes.
func (c *Checker) FlushMetrics(violations int) {
	if c.flushed == nil {
		c.flushed = &flushedCounts{}
	}
	f := c.flushed
	mCheckerEvents.Add(int64(c.events - f.events))
	mEvents.Add(int64(c.events - f.events))
	mNodes.Add(int64(len(c.nodes) - f.nodes))
	mEdges.Add(int64(len(c.edges) - f.edges))
	mBlocks.Add(int64(c.blocks - f.blocks))
	if violations > f.violations {
		mViolations.Add(int64(violations - f.violations))
		f.violations = violations
	}
	f.events = c.events
	f.nodes = len(c.nodes)
	f.edges = len(c.edges)
	f.blocks = c.blocks
}
