package workloads

import (
	"repro/internal/sched"
	"repro/internal/vsync"
)

// This file holds the channel-native service workloads: a token-bucket
// rate limiter, a bounded connection pool, a publish/subscribe work queue,
// and a heartbeat/presence monitor. Where the services.go subjects build
// on monitor primitives (locks and condition waits), these four exercise
// the message-passing surface — send/recv/close and select — so the
// channel rules of every layer (runtime semantics, DPOR dependence, mover
// classes, checker happens-before) see realistic server-style traffic.
//
// All four are race-free by channel discipline: shared state is either
// owned by exactly one thread, protected by a lock, or handed off through
// a channel (the value received confers exclusive ownership).

func init() {
	register(Spec{
		Name:           "ratelimit",
		Description:    "token-bucket rate limiter; non-blocking grab with blocking fallback",
		DefaultThreads: 3,
		DefaultSize:    3,
		Build:          buildRateLimit,
	})
	register(Spec{
		Name:           "connpool",
		Description:    "bounded connection pool; ownership handed off through a buffered channel",
		DefaultThreads: 3,
		DefaultSize:    3,
		Build:          buildConnPool,
	})
	register(Spec{
		Name:           "pubsub",
		Description:    "publish/subscribe work queue; close broadcasts shutdown to subscribers",
		DefaultThreads: 3,
		DefaultSize:    4,
		Build:          buildPubSub,
	})
	register(Spec{
		Name:           "heartbeat",
		Description:    "presence monitor selecting on heartbeats and context cancellation",
		DefaultThreads: 3,
		DefaultSize:    3,
		Build:          buildHeartbeat,
	})
}

// buildRateLimit models a token-bucket limiter: a refiller thread feeds a
// small buffered channel, and each client must take a token before serving
// a request. Clients first try a non-blocking grab (select with default);
// an empty bucket counts a throttle and falls back to a blocking receive.
// The refiller emits exactly as many tokens as the clients consume, so the
// program terminates on every schedule.
func buildRateLimit(threads, size int) *sched.Program {
	p := sched.NewProgram("ratelimit")
	tokens := p.Chan("tokens", 2) // bucket depth
	work := p.Vars("work", threads)
	served := NewCounter(p, "served")
	throttled := NewCounter(p, "throttled")

	p.SetMain(func(t *sched.T) {
		refiller := t.Fork("refiller", func(t *sched.T) {
			for i := 0; i < threads*size; i++ {
				t.Send(tokens, 1)
			}
		})
		ws := forkWorkers(t, threads, "client", func(t *sched.T, id int) {
			for n := 0; n < size; n++ {
				if idx, _, _ := t.SelectDefault(sched.RecvCase(tokens)); idx < 0 {
					throttled.Add(t, 1)
					t.Recv(tokens)
				}
				// Per-client state: race-free by thread ownership.
				t.Write(work[id], t.Read(work[id])+1)
				served.Add(t, 1)
			}
		})
		joinAll(t, ws)
		t.Join(refiller)
		t.Close(tokens)
	})
	return p
}

// buildConnPool models a fixed-size connection pool as a buffered channel
// of connection ids. A client receives an id (checkout), uses the
// connection's state, and sends the id back (return). The per-connection
// accesses are unlocked yet race-free — the id came off the channel, so
// no other client can hold it. This is the channel-discipline exemplar:
// the happens-before edges carried by the sends and receives are the only
// thing standing between these accesses and a race.
func buildConnPool(threads, size int) *sched.Program {
	const conns = 2
	p := sched.NewProgram("connpool")
	pool := p.Chan("pool", conns)
	connUses := p.Vars("conn", conns)

	p.SetMain(func(t *sched.T) {
		for i := 0; i < conns; i++ {
			t.Send(pool, int64(i))
		}
		ws := forkWorkers(t, threads, "client", func(t *sched.T, id int) {
			for n := 0; n < size; n++ {
				c, _ := t.Recv(pool)
				t.Write(connUses[c], t.Read(connUses[c])+1)
				t.Send(pool, c)
			}
		})
		joinAll(t, ws)
		t.Close(pool)
	})
	return p
}

// buildPubSub models a work queue with shutdown-by-close: one producer
// publishes jobs on a small buffered channel and closes it, and the
// subscribers drain it with the comma-ok receive loop, folding their
// results into a lock-protected total. Close-as-broadcast is the
// termination signal — no sentinel values, no condition variables.
func buildPubSub(threads, size int) *sched.Program {
	p := sched.NewProgram("pubsub")
	jobs := p.Chan("jobs", 2)
	total := NewCounter(p, "total")

	p.SetMain(func(t *sched.T) {
		prod := t.Fork("producer", func(t *sched.T) {
			for i := 1; i <= size; i++ {
				t.Send(jobs, int64(i))
			}
			t.Close(jobs)
		})
		ws := forkWorkers(t, threads, "sub", func(t *sched.T, id int) {
			local := int64(0)
			for {
				v, ok := t.Recv(jobs)
				if !ok {
					break
				}
				local += v
			}
			total.Add(t, local)
		})
		joinAll(t, ws)
		t.Join(prod)
	})
	return p
}

// buildHeartbeat models a presence tracker: workers report liveness on an
// unbuffered heartbeat channel while a monitor selects between the next
// heartbeat and context cancellation. The monitor is the sole writer of
// the presence table, so those accesses are race-free by ownership; the
// select nondeterminism (heartbeat vs. done once both are ready) is a real
// scheduler choice point for the exploration strategies.
func buildHeartbeat(threads, size int) *sched.Program {
	p := sched.NewProgram("heartbeat")
	hb := p.Chan("hb", 0)
	ctx := vsync.NewContext(p, "ctx")
	alive := p.Vars("alive", threads)
	beats := p.Var("beats")

	p.SetMain(func(t *sched.T) {
		mon := t.Fork("monitor", func(t *sched.T) {
			for {
				idx, v, ok := t.Select(sched.RecvCase(hb), sched.RecvCase(ctx.Done()))
				if idx != 0 || !ok {
					return
				}
				t.Write(beats, t.Read(beats)+1)
				t.Write(alive[v], t.Read(alive[v])+1)
			}
		})
		ws := forkWorkers(t, threads, "worker", func(t *sched.T, id int) {
			for n := 0; n < size; n++ {
				t.Send(hb, int64(id))
			}
		})
		joinAll(t, ws)
		ctx.Cancel(t)
		t.Join(mon)
	})
	return p
}
