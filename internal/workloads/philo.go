package workloads

import "repro/internal/sched"

func init() {
	register(Spec{
		Name:           "philo",
		Description:    "dining philosophers; ordered fork locks, explicit yields between meals",
		DefaultThreads: 4, // philosophers
		DefaultSize:    3, // meals each
		Build:          buildPhilo,
	})
}

// buildPhilo is the canonical fully annotated cooperable program: each meal
// is one transaction (two ordered acquires, plate and counter updates, two
// releases) and an explicit yield separates meals. It demonstrates the
// annotation style the paper advocates — the checker accepts it as-is under
// any schedule.
func buildPhilo(threads, size int) *sched.Program {
	if threads < 2 {
		threads = 2
	}
	p := sched.NewProgram("philo")
	forks := p.Mutexes("fork", threads)
	plates := p.Vars("plate", threads)
	meals := NewCounter(p, "meals")

	p.SetMain(func(t *sched.T) {
		hs := forkWorkers(t, threads, "philo", func(t *sched.T, id int) {
			left, right := id, (id+1)%threads
			// Ordered acquisition prevents deadlock.
			lo, hi := left, right
			if lo > hi {
				lo, hi = hi, lo
			}
			for m := 0; m < size; m++ {
				t.Call("philo.dine", func() {
					t.Acquire(forks[lo])
					t.Acquire(forks[hi])
					t.Write(plates[id], t.Read(plates[id])+1)
					t.Release(forks[hi])
					t.Release(forks[lo])
				})
				// Annotations: each critical section is its own
				// transaction; between them interference is acknowledged.
				t.Yield()
				t.Call("philo.digest", func() { meals.Add(t, 1) })
				t.Yield()
			}
		})
		joinAll(t, hs)
		if meals.Value(t) != int64(threads*size) {
			panic("philo: meal count wrong")
		}
	})
	return p
}
