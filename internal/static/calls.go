package static

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/trace"
)

// ---- expressions ---------------------------------------------------------

// eval walks an expression for its instrumented effects and returns its
// abstract value.
func (it *interp) eval(e ast.Expr) binding {
	if e == nil || !it.live {
		return binding{}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return it.evalIdent(x, false)
	case *ast.SelectorExpr:
		return it.evalSelector(x, false)
	case *ast.CallExpr:
		return it.call(x, false)
	case *ast.FuncLit:
		return binding{kind: bindFunc, fn: x, env: it.env}
	case *ast.ParenExpr:
		return it.eval(x.X)
	case *ast.StarExpr:
		return it.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW { // <-ch
			it.eval(x.X)
			it.boundaryAt(x.Pos())
			return binding{}
		}
		if x.Op == token.AND { // &x: same abstract object
			return it.addressable(x.X)
		}
		return it.eval(x.X)
	case *ast.BinaryExpr:
		it.eval(x.X)
		it.eval(x.Y)
		if s, ok := it.constString(x); ok {
			return binding{kind: bindConst, str: s}
		}
		return binding{}
	case *ast.IndexExpr:
		b := it.eval(x.X)
		it.eval(x.Index)
		if b.kind == bindKey && b.key.valid() {
			return binding{kind: bindKey, key: elemOf(b.key)}
		}
		it.plainIndexRead(x)
		return binding{}
	case *ast.SliceExpr:
		b := it.eval(x.X)
		it.eval(x.Low)
		it.eval(x.High)
		it.eval(x.Max)
		return b
	case *ast.CompositeLit:
		return it.composite(x)
	case *ast.TypeAssertExpr:
		return it.eval(x.X)
	case *ast.KeyValueExpr:
		it.eval(x.Key)
		return it.eval(x.Value)
	case *ast.BasicLit:
		if s, ok := it.constString(x); ok {
			return binding{kind: bindConst, str: s}
		}
		return binding{}
	}
	return binding{}
}

// addressable resolves &x without emitting a read of x.
func (it *interp) addressable(e ast.Expr) binding {
	switch x := e.(type) {
	case *ast.Ident:
		return it.evalIdent(x, true)
	case *ast.SelectorExpr:
		return it.evalSelector(x, true)
	case *ast.IndexExpr:
		b := it.eval(x.X)
		it.eval(x.Index)
		if b.kind == bindKey && b.key.valid() {
			return binding{kind: bindKey, key: elemOf(b.key)}
		}
		return binding{}
	}
	return it.eval(e)
}

// evalIdent resolves an identifier. addrOnly suppresses the plain-memory
// read op (the identifier is being addressed or assigned, not read).
func (it *interp) evalIdent(x *ast.Ident, addrOnly bool) binding {
	obj := it.an.info.Uses[x]
	if obj == nil {
		obj = it.an.info.Defs[x]
	}
	switch o := obj.(type) {
	case *types.Var:
		if b, ok := it.env.lookup(o); ok {
			return b
		}
		if k, ok := it.storageKey(o); ok {
			if k.kind == kindPlainVar && !addrOnly {
				it.emit(trace.OpRead, k, x.Pos(), false)
			}
			return binding{kind: bindKey, key: k}
		}
		if s, ok := it.constString(x); ok {
			return binding{kind: bindConst, str: s}
		}
		return binding{}
	case *types.Func:
		return binding{kind: bindFunc, fobj: o}
	case *types.Const:
		if s, ok := it.constString(x); ok {
			return binding{kind: bindConst, str: s}
		}
	}
	return binding{}
}

// storageKey assigns a stable key to package-level variables (shared
// storage) and, for identity-bearing DSL types, to free variables reaching
// this root from outside any tracked binding.
func (it *interp) storageKey(o *types.Var) (key, bool) {
	kk := dslValueKind(o.Type())
	pkgLevel := o.Pkg() != nil && o.Parent() == o.Pkg().Scope()
	switch {
	case kk == kindVar || kk == kindMutex:
		multi := isCollection(o.Type())
		k := pathKey(kk, o, "", multi)
		return k, o.Pkg() != nil
	case kk == kindVolatile:
		return pathKey(kindVolatile, o, "", false), o.Pkg() != nil
	case pkgLevel && isPlainShared(o.Type()):
		return pathKey(kindPlainVar, o, "", false), true
	}
	return key{}, false
}

func isCollection(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return true
	case *types.Pointer:
		return isCollection(u.Elem())
	}
	return false
}

// isPlainShared reports whether a plain-Go package variable's accesses
// should be modeled as shared-memory operations: scalars, pointers,
// structs — not types whose accesses we cannot attribute (interfaces,
// funcs).
func isPlainShared(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Basic, *types.Pointer, *types.Struct, *types.Slice, *types.Map:
		return true
	}
	return false
}

// evalSelector resolves x.f: package members, tracked struct fields, and
// plain shared fields.
func (it *interp) evalSelector(x *ast.SelectorExpr, addrOnly bool) binding {
	// Qualified identifier (pkg.Name)?
	if id, ok := x.X.(*ast.Ident); ok {
		if _, isPkg := it.an.info.Uses[id].(*types.PkgName); isPkg {
			return it.evalIdent(x.Sel, addrOnly)
		}
	}
	// Method value?
	if sel, ok := it.an.info.Selections[x]; ok && sel.Kind() == types.MethodVal {
		recv := it.eval(x.X)
		if f, ok := sel.Obj().(*types.Func); ok {
			b := binding{kind: bindFunc, fobj: f}
			b.env = it.env
			_ = recv
			return b
		}
	}
	base := it.eval(x.X)
	field := x.Sel.Name
	if base.kind == bindKey && base.key.valid() {
		if fb, ok := it.an.fields.get(base.key, field); ok {
			return fb
		}
		ft := it.an.info.Types[x].Type
		kk := dslValueKind(ft)
		switch kk {
		case kindVar, kindMutex, kindVolatile:
			return binding{kind: bindKey, key: derivedKey(kk, base.key, field)}
		}
		if base.key.kind == kindOpaque || base.key.kind == kindPlainVar {
			k := derivedKey(kindPlainVar, base.key, field)
			if ft != nil && isPlainShared(ft) {
				if !addrOnly {
					it.emit(trace.OpRead, k, x.Pos(), false)
				}
				return binding{kind: bindKey, key: k}
			}
		}
	}
	return binding{}
}

// plainIndexRead models a read through an untracked indexed expression.
func (it *interp) plainIndexRead(x *ast.IndexExpr) {}

// composite builds a struct/slice literal. Struct literals become fresh
// tracked objects with their field bindings recorded; collections of
// identity-bearing values taint their elements (index-insensitive).
func (it *interp) composite(x *ast.CompositeLit) binding {
	tv, ok := it.an.info.Types[x]
	if !ok {
		for _, el := range x.Elts {
			it.eval(el)
		}
		return binding{}
	}
	t := tv.Type
	if p, okp := t.Underlying().(*types.Pointer); okp {
		t = p.Elem()
	}
	if st, oks := t.Underlying().(*types.Struct); oks {
		k := freshKey(kindOpaque, it.inst, it.an.fset.Position(x.Pos()), "lit", it.loopDepth > 0)
		for i, el := range x.Elts {
			if kv, okkv := el.(*ast.KeyValueExpr); okkv {
				b := it.eval(kv.Value)
				if name, okn := kv.Key.(*ast.Ident); okn {
					it.an.fields.set(k, name.Name, b)
				}
			} else if i < st.NumFields() {
				b := it.eval(el)
				it.an.fields.set(k, st.Field(i).Name(), b)
			}
		}
		return binding{kind: bindKey, key: k}
	}
	// Slice/array/map literal.
	for _, el := range x.Elts {
		b := it.eval(el)
		if b.kind == bindKey && identityMatters(it.an.info.Types[x].Type) {
			it.an.taint(b.key, "stored in collection literal")
		}
	}
	if identityMatters(tv.Type) {
		k := freshKey(dslValueKind(tv.Type), it.inst, it.an.fset.Position(x.Pos()), "litslice", true)
		return binding{kind: bindKey, key: k}
	}
	return binding{}
}

// ---- assignment ----------------------------------------------------------

func (it *interp) assign(x *ast.AssignStmt) {
	var vals []binding
	for _, r := range x.Rhs {
		vals = append(vals, it.eval(r))
	}
	// Multi-value from a single call: bindings come from the frame's
	// result merge (call returns []binding via callResults).
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		if rs, ok := it.lastResults(); ok {
			vals = rs
		} else {
			vals = make([]binding, len(x.Lhs))
		}
	}
	for i, l := range x.Lhs {
		var v binding
		if i < len(vals) {
			v = vals[i]
		}
		if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
			// Compound assignment (+=, etc.): read then write.
			it.plainAccess(l, false)
			it.plainAccess(l, true)
			continue
		}
		it.assignTo(l, v)
	}
}

// lastResults returns multi-result bindings of the most recent inlined
// call, if the interpreter captured them.
func (it *interp) lastResults() ([]binding, bool) {
	if it.lastCallResults != nil {
		r := it.lastCallResults
		it.lastCallResults = nil
		return r, true
	}
	return nil, false
}

func (it *interp) assignTo(l ast.Expr, v binding) {
	switch lhs := l.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj, ok := it.an.info.Defs[lhs].(*types.Var); ok {
			it.env.define(obj, v)
			return
		}
		if obj, ok := it.an.info.Uses[lhs].(*types.Var); ok {
			if _, tracked := it.env.lookup(obj); tracked {
				if it.loopDepth > 0 && v.kind == bindKey {
					// Rebinding in a loop: the name sees many objects.
					v.key.multi = true
				}
				it.env.bind(obj, v)
				return
			}
			if k, okk := it.storageKey(obj); okk {
				if k.kind == kindPlainVar {
					it.emit(trace.OpWrite, k, lhs.Pos(), false)
					return
				}
				// Assigning a fresh object over a package-level DSL slot:
				// both classes merge conservatively.
				if v.kind == bindKey {
					it.an.taint(v.key, "stored in package variable")
					it.an.taint(k, "package variable reassigned")
				}
				return
			}
			it.env.define(obj, v)
		}
	case *ast.SelectorExpr:
		base := it.eval(lhs.X)
		if base.kind == bindKey && base.key.valid() {
			ft := it.an.info.Types[lhs].Type
			if ft != nil && dslValueKind(ft) == kindOpaque &&
				(base.key.kind == kindOpaque || base.key.kind == kindPlainVar) && isPlainShared(ft) {
				k := derivedKey(kindPlainVar, base.key, lhs.Sel.Name)
				it.emit(trace.OpWrite, k, lhs.Pos(), false)
				return
			}
			it.an.fields.set(base.key, lhs.Sel.Name, v)
			return
		}
		if v.kind == bindKey && identityMatters(it.an.info.Types[lhs].Type) {
			it.an.taint(v.key, "stored through untracked selector")
		}
	case *ast.IndexExpr:
		b := it.eval(lhs.X)
		it.eval(lhs.Index)
		if v.kind == bindKey && identityMatters(it.an.info.Types[lhs].Type) {
			// Index-insensitive: element classes are multi.
			it.an.taintMulti(v.key)
		}
		if b.kind == bindKey && b.key.kind == kindPlainVar {
			it.emit(trace.OpWrite, elemOf(b.key), lhs.Pos(), false)
		}
	case *ast.StarExpr:
		it.assignTo(lhs.X, v)
	case *ast.ParenExpr:
		it.assignTo(lhs.X, v)
	}
}

// plainAccess models a read or write of an lvalue for compound
// assignments and ++/--.
func (it *interp) plainAccess(l ast.Expr, write bool) {
	op := trace.OpRead
	if write {
		op = trace.OpWrite
	}
	switch lhs := l.(type) {
	case *ast.Ident:
		if obj, ok := it.an.info.Uses[lhs].(*types.Var); ok {
			if _, tracked := it.env.lookup(obj); tracked {
				return
			}
			if k, okk := it.storageKey(obj); okk && k.kind == kindPlainVar {
				it.emit(op, k, lhs.Pos(), false)
			}
		}
	case *ast.SelectorExpr:
		base := it.evalOnce(lhs.X, write)
		if base.kind == bindKey && base.key.valid() &&
			(base.key.kind == kindOpaque || base.key.kind == kindPlainVar) {
			ft := it.an.info.Types[lhs].Type
			if ft != nil && isPlainShared(ft) {
				it.emit(op, derivedKey(kindPlainVar, base.key, lhs.Sel.Name), lhs.Pos(), false)
			}
		}
	case *ast.IndexExpr:
		b := it.evalOnce(lhs.X, write)
		if !write {
			it.eval(lhs.Index)
		}
		if b.kind == bindKey && b.key.valid() && b.key.kind == kindPlainVar {
			it.emit(op, elemOf(b.key), lhs.Pos(), false)
		}
	case *ast.StarExpr:
		it.plainAccess(lhs.X, write)
	case *ast.ParenExpr:
		it.plainAccess(lhs.X, write)
	}
}

// evalOnce evaluates the base of a compound-assignment lvalue; on the
// write leg the base was already walked by the read leg, so suppress
// duplicate effects by evaluating through addressable (no read emission).
func (it *interp) evalOnce(e ast.Expr, second bool) binding {
	if second {
		return it.addressable(e)
	}
	return it.addressable(e)
}
