package core

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Witness explains one violation concretely: the interference that makes
// the broken transaction non-serializable in the observed trace, phrased
// as the events of other threads that conflict with the transaction's
// events between its start and the offending operation.
type Witness struct {
	// Violation is the explained report.
	Violation Violation
	// Interferers are events by other threads, within the transaction's
	// span, that conflict with transaction events.
	Interferers []trace.Event
	// ConflictsWith maps each interferer (by index in Interferers) to the
	// transaction event it conflicts with.
	ConflictsWith []trace.Event
}

// Explain reconstructs a witness for v against the trace it was found in.
// When the violating transaction's span contains no interference (the
// violation is structural — the pattern would break under *some* schedule,
// not this one), Interferers is empty and the witness says so.
func Explain(tr *trace.Trace, v Violation) *Witness {
	w := &Witness{Violation: v}
	lo := v.TxStart
	hi := v.Event.Idx
	if lo < 0 {
		lo = 0
	}
	if hi > len(tr.Events) {
		hi = len(tr.Events)
	}
	// Transaction events of the violating thread in [lo, hi].
	var txEvents []trace.Event
	for i := lo; i <= hi && i < len(tr.Events); i++ {
		if tr.Events[i].Tid == v.Event.Tid {
			txEvents = append(txEvents, tr.Events[i])
		}
	}
	for i := lo; i <= hi && i < len(tr.Events); i++ {
		e := tr.Events[i]
		if e.Tid == v.Event.Tid {
			continue
		}
		for _, te := range txEvents {
			if trace.Conflict(e, te) {
				w.Interferers = append(w.Interferers, e)
				w.ConflictsWith = append(w.ConflictsWith, te)
				break
			}
		}
	}
	return w
}

// Format renders the witness for humans, resolving locations through the
// trace's string table.
func (w *Witness) Format(tr *trace.Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", w.Violation)
	loc := tr.Strings.Name(w.Violation.Event.Loc)
	if loc != "" {
		fmt.Fprintf(&b, "  offending operation at %s\n", loc)
	}
	if len(w.Interferers) == 0 {
		b.WriteString("  no interference observed in this schedule: the transaction's\n")
		b.WriteString("  shape (a lock-protected region already committed) would admit\n")
		b.WriteString("  interference under another schedule — the yield documents that.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  observed interference inside the transaction (events #%d..#%d):\n",
		w.Violation.TxStart, w.Violation.Event.Idx)
	for i, e := range w.Interferers {
		te := w.ConflictsWith[i]
		fmt.Fprintf(&b, "    %s conflicts with %s\n", tr.Format(e), tr.Format(te))
	}
	return b.String()
}
