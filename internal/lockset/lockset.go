// Package lockset implements an Eraser-style lockset race detector
// (Savage et al., SOSP 1997) — the second race-detection baseline of the
// checker-comparison experiment. Unlike the happens-before detector in
// internal/race it is flow-insensitive: it warns whenever a shared-modified
// variable's candidate lockset becomes empty, which catches races that a
// particular interleaving hides but also produces the false positives
// (e.g. fork/join transfer, publication idioms) the paper-era literature
// documents.
//
// State layout follows the dense-checker design (DESIGN.md, "Analysis state
// layout"): variable states live in a paged table keyed by the near-dense
// variable ids, and per-thread held-lock multisets are small slices scanned
// linearly (lock nesting depth is tiny), so the per-event hot path does no
// map operations and no allocation. Candidate locksets are slices refined
// in place; the former heldSet, which allocated a fresh map on every
// shared-variable access, now snapshots into the variable's candidate
// slice directly.
package lockset

import (
	"fmt"
	"sort"

	"repro/internal/dense"
	"repro/internal/trace"
)

// State is a variable's position in Eraser's ownership state machine.
type State uint8

const (
	// Virgin: never accessed. (The zero value, so an untouched table slot
	// is already a valid Virgin state.)
	Virgin State = iota
	// Exclusive: accessed by a single thread so far.
	Exclusive
	// Shared: read (but not written) by multiple threads.
	Shared
	// SharedModified: written by multiple threads or written after sharing;
	// the only state in which an empty lockset warns.
	SharedModified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Virgin:
		return "virgin"
	case Exclusive:
		return "exclusive"
	case Shared:
		return "shared"
	case SharedModified:
		return "shared-modified"
	}
	return "invalid"
}

// Warning reports a variable whose candidate lockset became empty while
// shared-modified.
type Warning struct {
	// Var is the unprotected variable.
	Var uint64
	// Event is the access that emptied the lockset (or accessed with an
	// already-empty set).
	Event trace.Event
}

// String renders a compact description.
func (w Warning) String() string {
	return fmt.Sprintf("lockset warning: var %d accessed with empty lockset by T%d (%s) at #%d",
		w.Var, w.Event.Tid, w.Event.Op, w.Event.Idx)
}

// varState is one variable's Eraser state. The zero value is a Virgin
// variable, so paged-table slots need no initialization.
type varState struct {
	state    State
	reported bool
	owner    trace.TID
	set      []uint64 // candidate lockset; meaningful once state ≥ Shared
}

// heldLocks is one thread's lock multiset: parallel slices of lock id and
// hold count, scanned linearly. Lock nesting depth is small (single
// digits), so linear scans beat any map while allocating only when the
// depth high-water mark grows.
type heldLocks struct {
	ids []uint64
	ns  []int32
}

func (h *heldLocks) count(lock uint64) int32 {
	for i, id := range h.ids {
		if id == lock {
			return h.ns[i]
		}
	}
	return 0
}

func (h *heldLocks) add(lock uint64, delta int32) {
	for i, id := range h.ids {
		if id == lock {
			if n := h.ns[i] + delta; n >= 0 {
				h.ns[i] = n
			}
			return
		}
	}
	if delta > 0 {
		h.ids = append(h.ids, lock)
		h.ns = append(h.ns, delta)
	}
}

func (h *heldLocks) drop(lock uint64) {
	for i, id := range h.ids {
		if id == lock {
			h.ns[i] = 0
			return
		}
	}
}

// Checker is a streaming Eraser analysis; it implements sched.Observer.
//
// The int32 counters keep the struct inside its 96-byte allocation class
// (the size the pre-telemetry checker had) — growing past it measurably
// slows the per-event benchmarks. A single checker is therefore bounded
// to ~2 billion events, far beyond any trace the suite produces.
type Checker struct {
	vars     dense.Table[varState]
	held     []heldLocks // indexed by TID
	warnings []Warning
	events   int32

	// Telemetry, counted in plain fields (a checker is single-goroutine
	// per run) and flushed to the obs registry by FlushMetrics. The access
	// count is derived at flush time as events-nonAccess, so the dominant
	// read/write path carries no added work at all: nonAccess counts the
	// other ops (lock bookkeeping, boundaries), refines counts candidate-set
	// intersections (the slow path), and fastpath = accesses - refines.
	nonAccess     int32
	refines       int32
	flushedEvents int32
}

// New returns an empty lockset checker.
func New() *Checker { return &Checker{} }

// NewSized returns an empty checker presized for a trace of about hint
// events (an allocation hint, matching sched.Options.EventsHint).
func NewSized(hint int) *Checker {
	c := New()
	c.HintEvents(hint)
	return c
}

// HintEvents presizes internal buffers; the virtual runtime forwards
// sched.Options.EventsHint here before a run starts.
func (c *Checker) HintEvents(n int) {
	if n <= 0 || c.events > 0 {
		return
	}
	if c.held == nil {
		c.held = make([]heldLocks, 0, 16)
	}
}

func (c *Checker) locksOf(t trace.TID) *heldLocks {
	if ti := int(t); ti < len(c.held) {
		return &c.held[ti]
	}
	return c.locksOfSlow(int(t))
}

func (c *Checker) locksOfSlow(ti int) *heldLocks {
	if ti >= len(c.held) {
		if ti >= cap(c.held) {
			grown := make([]heldLocks, ti+1, 2*(ti+1))
			copy(grown, c.held)
			c.held = grown
		} else {
			c.held = c.held[:ti+1]
		}
	}
	return &c.held[ti]
}

// Event processes one event in trace order.
func (c *Checker) Event(e trace.Event) {
	c.events++
	switch e.Op {
	case trace.OpAcquire:
		c.nonAccess++
		c.locksOf(e.Tid).add(e.Target, 1)
	case trace.OpRelease:
		c.nonAccess++
		c.locksOf(e.Tid).add(e.Target, -1)
	case trace.OpWait:
		// Wait releases the guarding lock entirely; the reacquisition
		// arrives as a separate acquire event.
		c.nonAccess++
		c.locksOf(e.Tid).drop(e.Target)
	case trace.OpRead, trace.OpWrite:
		c.access(e)
	default:
		c.nonAccess++
	}
}

// FlightName names the checker's batch spans in flight recordings; it
// implements sched.FlightNamed.
func (c *Checker) FlightName() string { return "eraser" }

// ObserveBatch processes one batch of events in trace order; it implements
// sched.BatchObserver (the fused pipeline's amortized-dispatch path).
//
// The Exclusive self-transition — a thread re-accessing a variable it
// already owns, the steady state of thread-local data — touches nothing but
// the event counter, so it retires inline on a non-allocating table probe;
// everything else takes the full Event path (which also covers the probe
// misses: a Virgin slot falls through and is materialized there).
func (c *Checker) ObserveBatch(batch []trace.Event) {
	for i := range batch {
		e := batch[i]
		if e.Op == trace.OpRead || e.Op == trace.OpWrite {
			if s := c.vars.Probe(e.Target); s != nil && s.state == Exclusive && s.owner == e.Tid {
				c.events++
				continue
			}
		}
		c.Event(e)
	}
}

func (c *Checker) access(e trace.Event) {
	s := c.vars.At(e.Target)
	isWrite := e.Op == trace.OpWrite
	switch s.state {
	case Virgin:
		s.state = Exclusive
		s.owner = e.Tid
		return
	case Exclusive:
		if e.Tid == s.owner {
			return
		}
		// First access by a second thread: initialize the candidate set to
		// the locks held now, then fall through to refinement semantics.
		if isWrite {
			s.state = SharedModified
		} else {
			s.state = Shared
		}
		c.snapshotHeld(s, e.Tid)
	case Shared:
		if isWrite {
			s.state = SharedModified
		}
		c.refine(s, e)
	case SharedModified:
		c.refine(s, e)
	}
	if s.state == SharedModified && len(s.set) == 0 && !s.reported {
		s.reported = true
		c.warnings = append(c.warnings, Warning{Var: e.Target, Event: e})
		mWarnings.Inc() // cold: at most once per variable
	}
}

// snapshotHeld initializes s.set to the locks t currently holds, reusing
// s.set's storage. This replaces the old heldSet, which allocated a fresh
// map[uint64]bool on every Exclusive→Shared transition.
func (c *Checker) snapshotHeld(s *varState, t trace.TID) {
	held := c.locksOf(t)
	set := s.set[:0]
	for i, id := range held.ids {
		if held.ns[i] > 0 {
			set = append(set, id)
		}
	}
	s.set = set
}

// refine intersects s.set with the locks held at e, in place.
func (c *Checker) refine(s *varState, e trace.Event) {
	c.refines++
	held := c.locksOf(e.Tid)
	out := s.set[:0]
	for _, l := range s.set {
		if held.count(l) > 0 {
			out = append(out, l)
		}
	}
	s.set = out
}

// Warnings returns the per-variable warnings in detection order.
func (c *Checker) Warnings() []Warning { return c.warnings }

// WarnedVars returns the warned variable ids in ascending order.
func (c *Checker) WarnedVars() []uint64 {
	out := make([]uint64, 0, len(c.warnings))
	for _, w := range c.warnings {
		out = append(out, w.Var)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns the number of events processed.
func (c *Checker) Events() int { return int(c.events) }

// Analyze runs a fresh checker over a complete trace.
func Analyze(tr *trace.Trace) *Checker {
	c := NewSized(tr.Len())
	for _, e := range tr.Events {
		c.Event(e)
	}
	c.FlushMetrics()
	return c
}
