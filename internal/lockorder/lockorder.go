// Package lockorder implements a GoodLock-style potential-deadlock
// analysis (Havelund, SPIN 2000; refined by Bensalem & Havelund): it builds
// the lock-order graph of an execution — an edge l1→l2 whenever some
// thread acquires l2 while holding l1 — and reports a *potential* deadlock
// for every cycle, even when no schedule in the battery actually
// deadlocked. It complements the scheduler's waits-for detector (which
// only fires on a manifested deadlock) the same way cooperability
// complements stress testing: the warning is schedule-independent.
//
// Gate locks are respected: if every edge of a cycle was taken while some
// common lock was held, the cycle cannot close at runtime and is reported
// as guarded (suppressed by default, visible via Warnings' Guarded field).
package lockorder

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// edge is one observed nested acquisition l1 -> l2.
type edge struct {
	from, to uint64
}

type edgeInfo struct {
	// guards is the intersection of lock sets held (besides from) across
	// all instances of this edge; a non-empty intersection can gate the
	// cycle.
	guards map[uint64]bool
	// tids is the set of threads that took the edge.
	tids map[trace.TID]bool
	// loc is a representative source location of the inner acquire.
	loc trace.LocID
}

// Warning reports one lock-order cycle.
type Warning struct {
	// Cycle is the lock ids in order (first repeated implicitly).
	Cycle []uint64
	// Guarded is true when a common gate lock protects every edge, making
	// the runtime deadlock impossible (GoodLock's false-positive filter).
	Guarded bool
	// SingleThread is true when one thread alone produced every edge (it
	// cannot deadlock with itself on reentrant locks).
	SingleThread bool
	// Locs are representative inner-acquire locations, one per edge.
	Locs []trace.LocID
}

// String renders the cycle compactly.
func (w Warning) String() string {
	var b strings.Builder
	b.WriteString("lock-order cycle: ")
	for i, l := range w.Cycle {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "lock%d", l)
	}
	fmt.Fprintf(&b, " -> lock%d", w.Cycle[0])
	if w.Guarded {
		b.WriteString(" (gate-guarded: cannot manifest)")
	}
	if w.SingleThread {
		b.WriteString(" (single thread: cannot manifest)")
	}
	return b.String()
}

// Analyzer builds the lock-order graph from a stream of events. It
// implements sched.Observer.
type Analyzer struct {
	held   map[trace.TID][]uint64 // acquisition stacks (with reentrancy)
	depth  map[[2]uint64]int      // (tid, lock) -> depth
	edges  map[edge]*edgeInfo
	events int
}

// New returns an empty analyzer.
func New() *Analyzer {
	return &Analyzer{
		held:  make(map[trace.TID][]uint64),
		depth: make(map[[2]uint64]int),
		edges: make(map[edge]*edgeInfo),
	}
}

// Event processes one event in trace order.
func (a *Analyzer) Event(e trace.Event) {
	a.events++
	key := [2]uint64{uint64(e.Tid), e.Target}
	switch e.Op {
	case trace.OpAcquire:
		if a.depth[key] == 0 {
			for _, outer := range a.held[e.Tid] {
				a.addEdge(e.Tid, outer, e.Target, e.Loc)
			}
			a.held[e.Tid] = append(a.held[e.Tid], e.Target)
		}
		a.depth[key]++
	case trace.OpRelease:
		if a.depth[key] > 0 {
			a.depth[key]--
			if a.depth[key] == 0 {
				a.drop(e.Tid, e.Target)
			}
		}
	case trace.OpWait:
		// Wait releases the guarding lock entirely; the reacquisition
		// arrives as a plain acquire.
		if a.depth[key] > 0 {
			a.depth[key] = 0
			a.drop(e.Tid, e.Target)
		}
	}
}

func (a *Analyzer) drop(t trace.TID, l uint64) {
	s := a.held[t]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == l {
			a.held[t] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

func (a *Analyzer) addEdge(t trace.TID, from, to uint64, loc trace.LocID) {
	if from == to {
		return
	}
	ei := a.edges[edge{from, to}]
	if ei == nil {
		ei = &edgeInfo{guards: nil, tids: map[trace.TID]bool{}, loc: loc}
		// Initial guard set: every other lock held under `from`.
		ei.guards = map[uint64]bool{}
		for _, l := range a.held[t] {
			if l != from && l != to {
				ei.guards[l] = true
			}
		}
		a.edges[edge{from, to}] = ei
	} else {
		// Intersect guards with the currently held set.
		cur := map[uint64]bool{}
		for _, l := range a.held[t] {
			cur[l] = true
		}
		for g := range ei.guards {
			if !cur[g] {
				delete(ei.guards, g)
			}
		}
	}
	ei.tids[t] = true
}

// Warnings returns every elementary cycle of length 2 and 3 in the
// lock-order graph (longer cycles exist in principle but 2-cycles dominate
// real reports; 3-cycles catch hierarchical violations), deduplicated by
// rotation.
func (a *Analyzer) Warnings() []Warning {
	adj := map[uint64][]uint64{}
	for e := range a.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, l := range adj {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	seen := map[string]bool{}
	var out []Warning
	emit := func(cycle []uint64) {
		// Canonical rotation: start at the minimum lock id.
		min := 0
		for i := range cycle {
			if cycle[i] < cycle[min] {
				min = i
			}
		}
		canon := append(append([]uint64{}, cycle[min:]...), cycle[:min]...)
		key := fmt.Sprint(canon)
		if seen[key] {
			return
		}
		seen[key] = true
		w := Warning{Cycle: canon}
		// Guarded: a lock common to ALL edges' guard sets.
		common := map[uint64]bool{}
		first := true
		tids := map[trace.TID]bool{}
		for i := range canon {
			from := canon[i]
			to := canon[(i+1)%len(canon)]
			ei := a.edges[edge{from, to}]
			if ei == nil {
				return // not a real cycle (shouldn't happen)
			}
			w.Locs = append(w.Locs, ei.loc)
			for t := range ei.tids {
				tids[t] = true
			}
			if first {
				for g := range ei.guards {
					common[g] = true
				}
				first = false
			} else {
				for g := range common {
					if !ei.guards[g] {
						delete(common, g)
					}
				}
			}
		}
		w.Guarded = len(common) > 0
		w.SingleThread = len(tids) == 1
		out = append(out, w)
	}
	for from, tos := range adj {
		for _, to := range tos {
			// 2-cycles.
			if hasEdge(a.edges, to, from) && from < to {
				emit([]uint64{from, to})
			}
			// 3-cycles.
			for _, third := range adj[to] {
				if third != from && hasEdge(a.edges, third, from) {
					emit([]uint64{from, to, third})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i].Cycle) < fmt.Sprint(out[j].Cycle)
	})
	return out
}

func hasEdge(edges map[edge]*edgeInfo, from, to uint64) bool {
	_, ok := edges[edge{from, to}]
	return ok
}

// Unguarded returns the warnings that can actually manifest: cycles with
// no common gate lock, produced by at least two threads.
func (a *Analyzer) Unguarded() []Warning {
	var out []Warning
	for _, w := range a.Warnings() {
		if !w.Guarded && !w.SingleThread {
			out = append(out, w)
		}
	}
	return out
}

// Events returns the number of events processed.
func (a *Analyzer) Events() int { return a.events }

// Analyze runs a fresh analyzer over a complete trace.
func Analyze(tr *trace.Trace) *Analyzer {
	a := New()
	for _, e := range tr.Events {
		a.Event(e)
	}
	return a
}
