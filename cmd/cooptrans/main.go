// Command cooptrans translates real Go packages into the virtual-thread
// runtime and, optionally, runs the dynamic checker battery and the
// three-way differential (translated dynamic checks vs. coopvet static
// claims) over the result.
//
// Usage:
//
//	cooptrans [-run] [-json] [-emit dir] [-max-runs n] [-max-pre n] dir...
//
// Without flags it translates each package and prints the units and any
// diagnostics. With -run it explores each translated unit, feeds every
// schedule through the two-pass cooperability checker and the fused
// Table 3 battery, and cross-checks the results against the static pass
// on the original source. With -emit it writes each unit as standalone
// sched-DSL Go source into the given directory.
//
// Exit status: 0 on clean translation (and, with -run, agreement);
// 1 when any package has translation diagnostics; 2 on infrastructure
// errors or — the worst outcome — a three-way contradiction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cooptrans"
	"repro/internal/harness"
)

func main() {
	var (
		run     = flag.Bool("run", false, "explore translated units and run the three-way differential")
		jsonOut = flag.Bool("json", false, "emit machine-readable reports")
		emitDir = flag.String("emit", "", "write each unit as sched-DSL Go source into this directory")
		maxRuns = flag.Int("max-runs", 200, "schedules explored per unit with -run")
		maxPre  = flag.Int("max-pre", 1, "preemption bound per schedule with -run")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cooptrans [flags] dir...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	exit := 0
	var reports []any
	for _, dir := range flag.Args() {
		var rep any
		var diags []cooptrans.Diagnostic
		if *run {
			tw, err := harness.ThreeWay(dir, harness.ThreeWayOptions{MaxRuns: *maxRuns, MaxPreemptions: *maxPre})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cooptrans:", err)
				os.Exit(2)
			}
			if !tw.Agrees() {
				exit = 2
			}
			diags = tw.Diags
			rep = tw
			if !*jsonOut {
				printThreeWay(tw)
			}
		} else {
			tr, err := cooptrans.Translate(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cooptrans:", err)
				os.Exit(2)
			}
			diags = tr.Diags
			rep = tr
			if !*jsonOut {
				printTranslation(tr)
			}
			if *emitDir != "" {
				if err := emitUnits(tr, *emitDir); err != nil {
					fmt.Fprintln(os.Stderr, "cooptrans:", err)
					os.Exit(2)
				}
			}
		}
		if len(diags) > 0 && exit == 0 {
			exit = 1
		}
		reports = append(reports, rep)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var out any = reports
		if len(reports) == 1 {
			out = reports[0]
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "cooptrans:", err)
			os.Exit(2)
		}
	}
	os.Exit(exit)
}

func printTranslation(tr *cooptrans.Translation) {
	fmt.Printf("%s (package %s): %d unit(s)\n", tr.Dir, tr.Package, len(tr.Units))
	for _, u := range tr.Units {
		fmt.Printf("  %s  %d object(s)\n", u, len(u.Objects))
	}
	for _, s := range tr.Skipped {
		fmt.Printf("  skipped entry %s\n", s)
	}
	for _, d := range tr.Diags {
		fmt.Printf("  diag %s\n", d)
	}
	for _, w := range tr.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
}

func printThreeWay(tw *harness.ThreeWayReport) {
	fmt.Printf("%s (package %s): %d unit(s), %d static claim(s)\n",
		tw.Dir, tw.Package, len(tw.Units), tw.StaticClaims)
	for _, u := range tw.Units {
		fmt.Printf("  %s: %d run(s), %d violating, %d racy var(s)\n",
			u.Name, u.Runs, u.ViolationRuns, u.RacyVars)
		for _, l := range u.ViolationLocs {
			fmt.Printf("    violation at %s\n", l)
		}
	}
	for _, d := range tw.Diags {
		fmt.Printf("  diag %s\n", d)
	}
	if tw.Agrees() {
		fmt.Printf("  agreement: static and dynamic checkers do not contradict\n")
	}
	for _, c := range tw.Contradictions {
		fmt.Printf("  CONTRADICTION: %s claimed %s yet unit %s violates at %s\n",
			c.Func, c.Verdict, c.Unit, c.Loc)
	}
}

func emitUnits(tr *cooptrans.Translation, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, u := range tr.Units {
		path := filepath.Join(dir, u.Name+".go")
		if err := os.WriteFile(path, []byte(u.Emit()), 0o644); err != nil {
			return err
		}
		fmt.Printf("  emitted %s\n", path)
	}
	return nil
}
