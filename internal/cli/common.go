package cli

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ByteSize is a flag.Value for byte quantities: a plain integer is bytes,
// and KiB/MiB/GiB (binary) or KB/MB/GB (decimal) suffixes are accepted,
// case-insensitively ("512MiB", "2gb", "1048576").
type ByteSize int64

func (b *ByteSize) String() string { return strconv.FormatInt(int64(*b), 10) }

// Set parses s into bytes.
func (b *ByteSize) Set(s string) error {
	u := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1_000_000}, {"gb", 1_000_000_000},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(u, suf.s) {
			mult = suf.m
			u = strings.TrimSpace(strings.TrimSuffix(u, suf.s))
			break
		}
	}
	v, err := strconv.ParseFloat(u, 64)
	if err != nil || v < 0 {
		return fmt.Errorf("invalid byte size %q (want e.g. 1048576, 512MiB, 2GB)", s)
	}
	*b = ByteSize(v * float64(mult))
	return nil
}

// Common holds the flag values every checker CLI shares: workload/battery
// selection (-w, -seeds, -threads, -size), the telemetry surfaces
// (-telemetry, -metrics-addr, -progress), and the run budgets (-timeout,
// -max-states, -mem-budget). It replaces the flag boilerplate that was
// repeated across cmd/coopcheck, cmd/racecheck, cmd/atomcheck and
// cmd/yieldinfer, and owns the SIGINT → graceful-drain wiring.
type Common struct {
	// Workload is the registered workload name (-w).
	Workload string
	// Seeds is the number of random schedules on top of the deterministic
	// battery (-seeds).
	Seeds int
	// Threads overrides the workload's worker count; 0 keeps the default
	// (-threads).
	Threads int
	// Size overrides the workload's problem size; 0 keeps the default
	// (-size).
	Size int
	// Telemetry, when set, is the path the run-report metrics snapshot is
	// written to on Close (-telemetry).
	Telemetry string
	// MetricsAddr, when set, serves live metrics JSON and pprof over HTTP
	// for the duration of the run (-metrics-addr).
	MetricsAddr string
	// Progress, when positive, is the interval of the stderr progress line
	// (-progress).
	Progress time.Duration
	// Flight, when set, enables the flight recorder for the run and writes
	// the recording here on Close (-flight); a .json suffix means Chrome
	// trace_event JSON (load in Perfetto), anything else the binary spill.
	Flight string
	// Timeout is the run's wall-clock budget (-timeout); when it expires
	// the tool reports partial results with status "deadline". 0 = none.
	Timeout time.Duration
	// MaxStates stops schedule execution after this many instrumented
	// events in total (-max-states); 0 = unlimited.
	MaxStates int64
	// MemBudget stops schedule execution once the heap exceeds it
	// (-mem-budget); 0 = unlimited.
	MemBudget ByteSize

	tool         string
	ctx          context.Context
	cancel       context.CancelFunc
	sigDone      chan struct{}
	status       sched.Status
	stopProgress func()
	shutdownHTTP func() error
	flightRec    *flight.Recorder
}

// NewCommon returns an empty Common for tools that register flag groups
// selectively (certify's exploration flags replace the battery group;
// tracedump runs on its own FlagSet). tool names the binary in telemetry
// metadata and diagnostics.
func NewCommon(tool string) *Common { return &Common{tool: tool} }

// RegisterWorkloadFlags registers the workload/battery selection flags
// (-w, -seeds, -threads, -size) on fs.
func (c *Common) RegisterWorkloadFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Workload, "w", "", "workload name (see -list on coopcheck)")
	fs.IntVar(&c.Seeds, "seeds", 4, "random schedules on top of the deterministic battery")
	fs.IntVar(&c.Threads, "threads", 0, "worker override (0 = workload default)")
	fs.IntVar(&c.Size, "size", 0, "size override (0 = workload default)")
}

// RegisterTelemetryFlags registers the observability flags (-telemetry,
// -metrics-addr, -progress, -flight) on fs. StartTelemetry brings the
// surfaces up; Close flushes them.
func (c *Common) RegisterTelemetryFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Telemetry, "telemetry", "", "write the run-report metrics snapshot to this JSON file")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve live metrics JSON + pprof on this address (e.g. :6060)")
	fs.DurationVar(&c.Progress, "progress", 0, "print a progress line to stderr at this interval (e.g. 5s)")
	fs.StringVar(&c.Flight, "flight", "", "record a flight trace and write it here (.json = Perfetto trace_event, else binary spill)")
}

// RegisterBudgetFlags registers the run-budget flags (-timeout,
// -max-states, -mem-budget) on fs.
func (c *Common) RegisterBudgetFlags(fs *flag.FlagSet) {
	fs.DurationVar(&c.Timeout, "timeout", 0, "wall-clock budget; on expiry report partial results with status \"deadline\" (0 = none)")
	fs.Int64Var(&c.MaxStates, "max-states", 0, "stop after this many instrumented events across all schedules (0 = unlimited)")
	fs.Var(&c.MemBudget, "mem-budget", "heap budget (e.g. 512MiB); stop with status \"budget-exhausted\" when exceeded (0 = unlimited)")
}

// RegisterCommon registers all shared flag groups on the default flag set
// and returns the destination struct. Call before flag.Parse.
func RegisterCommon(tool string) *Common {
	c := NewCommon(tool)
	c.RegisterWorkloadFlags(flag.CommandLine)
	c.RegisterTelemetryFlags(flag.CommandLine)
	c.RegisterBudgetFlags(flag.CommandLine)
	return c
}

// Start brings up the budget context (wall-clock deadline plus SIGINT →
// graceful drain) and the live telemetry surfaces the flags requested
// (the -metrics-addr HTTP endpoint and the -progress reporter). Call once
// after flag.Parse.
func (c *Common) Start() error {
	if c.Timeout > 0 {
		c.ctx, c.cancel = context.WithTimeout(context.Background(), c.Timeout)
	} else {
		c.ctx, c.cancel = context.WithCancel(context.Background())
	}
	// First ^C cancels the context so the battery drains cooperatively and
	// Close still flushes the telemetry; a second ^C aborts immediately.
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	c.sigDone = make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case <-ch:
			fmt.Fprintf(os.Stderr, "%s: interrupt — draining and flushing telemetry (^C again to abort)\n", c.tool)
			c.cancel()
			select {
			case <-ch:
				os.Exit(130)
			case <-c.sigDone:
			}
		case <-c.sigDone:
		}
	}()
	return c.StartTelemetry()
}

// StartTelemetry brings up only the observability surfaces the flags
// requested — the -metrics-addr HTTP endpoint, the -progress reporter, and
// the -flight recorder — without touching signals or the budget context.
// Tools that own their signal handling (certify, tracedump) call this
// instead of Start; Close tears everything down either way.
func (c *Common) StartTelemetry() error {
	if c.MetricsAddr != "" {
		addr, shutdown, err := obs.Serve(c.MetricsAddr, obs.Default)
		if err != nil {
			return fmt.Errorf("%s: -metrics-addr: %w", c.tool, err)
		}
		c.shutdownHTTP = shutdown
		fmt.Fprintf(os.Stderr, "%s: metrics at http://%s/metrics, pprof at http://%s/debug/pprof/\n",
			c.tool, addr, addr)
	}
	if c.Progress > 0 {
		c.stopProgress = obs.StartProgress(os.Stderr, c.Progress, obs.Default)
	}
	if c.Flight != "" {
		c.flightRec = flight.Enable(flight.Options{})
	}
	return nil
}

// Context is the tool's budget context: it carries the -timeout deadline
// and is cancelled by the first SIGINT. Background() before Start.
func (c *Common) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Budget assembles the sched.Budget the flags describe. The -timeout
// deadline is already carried by Context, so only the state and memory
// budgets are set explicitly.
func (c *Common) Budget() sched.Budget {
	return sched.Budget{Ctx: c.Context(), MaxStates: c.MaxStates, MemBudget: int64(c.MemBudget)}
}

// SetStatus records why the tool's work ended; Close writes it into the
// run report's meta. Unset means "complete".
func (c *Common) SetStatus(s sched.Status) { c.status = s }

// Status returns the recorded run status, defaulting to complete.
func (c *Common) Status() sched.Status {
	if c.status == "" {
		return sched.StatusComplete
	}
	return c.status
}

// Partial reports whether the run was cut off before completing.
func (c *Common) Partial() bool { return c.Status() != sched.StatusComplete }

// Battery runs the standard schedule battery for the Common selection
// under the configured budgets. A cutoff returns the completed prefix of
// the battery (no error) and records the status for the run report.
func (c *Common) Battery() ([]*trace.Trace, []*sched.Result, error) {
	traces, results, status, err := BatteryBudget(c.Budget(), c.Workload, c.Seeds, c.Threads, c.Size)
	if err == nil && status != sched.StatusComplete {
		c.SetStatus(status)
		fmt.Fprintf(os.Stderr, "%s: budget cutoff (%s) — %d of the battery's schedules completed\n",
			c.tool, status, len(traces))
	}
	return traces, results, err
}

// Close stops the live surfaces and writes the -telemetry run report with
// the final status. Call it on every exit path (it is idempotent),
// including before os.Exit.
func (c *Common) Close() error {
	if c.stopProgress != nil {
		c.stopProgress()
		c.stopProgress = nil
	}
	if c.shutdownHTTP != nil {
		c.shutdownHTTP() //nolint:errcheck // best-effort teardown
		c.shutdownHTTP = nil
	}
	if c.sigDone != nil {
		close(c.sigDone)
		c.sigDone = nil
	}
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	// Disable before the telemetry snapshot so the flight.events /
	// flight.dropped counters it flushes land in the run report.
	if c.flightRec != nil {
		flight.Disable()
		rec := c.flightRec.Snapshot()
		c.flightRec = nil
		path := c.Flight
		c.Flight = ""
		if err := flight.WriteFile(path, rec); err != nil {
			return fmt.Errorf("%s: -flight: %w", c.tool, err)
		}
		fmt.Fprintf(os.Stderr, "%s: flight recording (%d events on %d tracks, %d dropped) written to %s\n",
			c.tool, rec.Events(), len(rec.Tracks), rec.Dropped, path)
	}
	if c.Telemetry != "" {
		s := obs.Default.Snapshot()
		s.Meta = map[string]string{"tool": c.tool, "status": string(c.Status())}
		if c.Workload != "" {
			s.Meta["workload"] = c.Workload
		}
		path := c.Telemetry
		c.Telemetry = ""
		if err := s.WriteFile(path); err != nil {
			return fmt.Errorf("%s: -telemetry: %w", c.tool, err)
		}
	}
	return nil
}
