package sched

import (
	"testing"

	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// exploreBoth runs the same exploration with the flight recorder enabled
// and disabled, returning the recording plus both visit sequences.
func exploreBoth(t *testing.T, parallel int) (flight.Recording, *ExploreReport, []int, []int) {
	t.Helper()
	explore := func() (*ExploreReport, []int) {
		var visits []int
		rep, err := Explore(counterProgram(2, 2, true), ExploreOptions{
			MaxPreemptions: 1,
			Parallel:       parallel,
			Visit: func(res *Result, err error) bool {
				if err != nil {
					t.Fatalf("replay error: %v", err)
				}
				visits = append(visits, res.Events)
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, visits
	}
	flight.Enable(flight.Options{})
	rep, withRec := explore()
	r := flight.Disable()
	_, without := explore()
	return r.Snapshot(), rep, withRec, without
}

// countSpans returns how many spans named name begin in the recording.
func countSpans(rec flight.Recording, name string) int {
	n := 0
	for _, tr := range rec.Tracks {
		for _, e := range tr.Events {
			if e.Kind == flight.KindBegin && e.Name == name {
				n++
			}
		}
	}
	return n
}

func TestExploreFlightSpans(t *testing.T) {
	rec, rep, withRec, without := exploreBoth(t, 1)
	if len(withRec) != len(without) {
		t.Fatalf("recorder changed the visit count: %d vs %d", len(withRec), len(without))
	}
	for i := range withRec {
		if withRec[i] != without[i] {
			t.Fatalf("recorder changed visit %d: %d vs %d events", i, withRec[i], without[i])
		}
	}
	if got := countSpans(rec, "explore"); got != 1 {
		t.Fatalf("explore spans = %d, want 1", got)
	}
	if got := countSpans(rec, "schedule"); got != rep.Runs {
		t.Fatalf("schedule spans = %d, want %d (one per run)", got, rep.Runs)
	}
	// The explore span's end is annotated with the report status.
	var endStr string
	for _, tr := range rec.Tracks {
		for _, e := range tr.Events {
			if e.Kind == flight.KindEnd && e.Name == "explore" {
				endStr = e.Str
			}
		}
	}
	if endStr != string(rep.Status) {
		t.Fatalf("explore end note = %q, want %q", endStr, rep.Status)
	}
}

func TestExploreParallelFlightFlows(t *testing.T) {
	rec, rep, withRec, without := exploreBoth(t, 4)
	if len(withRec) != len(without) || len(withRec) != rep.Runs {
		t.Fatalf("visits %d/%d vs runs %d", len(withRec), len(without), rep.Runs)
	}
	if got := countSpans(rec, "schedule"); got != rep.Runs {
		t.Fatalf("driver schedule spans = %d, want %d", got, rep.Runs)
	}
	// Every task push emits a steal flow origin — deterministically one per
	// run plus the abandoned frontier (zero here, search ran to completion).
	flowOuts := 0
	for _, tr := range rec.Tracks {
		for _, e := range tr.Events {
			if e.Kind == flight.KindFlowOut && e.Name == "steal" {
				flowOuts++
			}
		}
	}
	if flowOuts != rep.Runs {
		t.Fatalf("steal flow origins = %d, want %d", flowOuts, rep.Runs)
	}
	// Worker replays, when they happened, land on worker tracks as "replay"
	// spans consuming the flow; the driver track must exist regardless.
	found := false
	for _, tr := range rec.Tracks {
		if tr.Name == "explore-driver" {
			found = true
		}
	}
	if !found {
		t.Fatal("no explore-driver track recorded")
	}
}

func TestPhaseAttribution(t *testing.T) {
	flight.Enable(flight.Options{})
	defer flight.Disable()
	res, err := Run(counterProgram(3, 50, true), Options{
		Strategy:    &RoundRobin{Quantum: 1},
		RecordTrace: true,
		Observers:   []Observer{&CountObserver{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PhaseTotalNs <= 0 {
		t.Fatalf("PhaseTotalNs = %d, want > 0", st.PhaseTotalNs)
	}
	if st.PhaseHandoffNs <= 0 {
		t.Fatalf("PhaseHandoffNs = %d, want > 0 (quantum-1 round robin switches constantly)", st.PhaseHandoffNs)
	}
	if st.PhaseAnalysisNs <= 0 {
		t.Fatalf("PhaseAnalysisNs = %d, want > 0 (per-event observer attached)", st.PhaseAnalysisNs)
	}
	if sum := st.PhaseGenNs + st.PhaseHandoffNs + st.PhaseAnalysisNs; sum != st.PhaseTotalNs && st.PhaseGenNs != 0 {
		t.Fatalf("phases don't partition total: gen %d + handoff %d + analysis %d != %d",
			st.PhaseGenNs, st.PhaseHandoffNs, st.PhaseAnalysisNs, st.PhaseTotalNs)
	}
}

func TestPhaseAttributionDisabled(t *testing.T) {
	if flight.Enabled() {
		t.Fatal("recorder unexpectedly enabled")
	}
	res, err := Run(counterProgram(2, 10, true), Options{Strategy: Cooperative{}})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.PhaseTotalNs != 0 || st.PhaseGenNs != 0 || st.PhaseHandoffNs != 0 || st.PhaseAnalysisNs != 0 {
		t.Fatalf("phase stats nonzero with recorder disabled: %+v", st)
	}
}

func TestFeedTraceCheckerSpans(t *testing.T) {
	res, err := Run(counterProgram(2, 20, true), Options{Strategy: Cooperative{}, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	r := flight.Enable(flight.Options{})
	defer flight.Disable()
	named := &namedBatchObserver{}
	anon := &anonBatchObserver{}
	FeedTrace(res.Trace, 16, named, anon)
	rec := r.Snapshot()
	batches := (res.Trace.Len() + 15) / 16
	if got := countSpans(rec, "test-checker"); got != batches {
		t.Fatalf("named checker spans = %d, want %d", got, batches)
	}
	if got := countSpans(rec, "observer-1"); got != batches {
		t.Fatalf("fallback-named spans = %d, want %d", got, batches)
	}
	if named.events != res.Trace.Len() || anon.events != res.Trace.Len() {
		t.Fatalf("observers saw %d/%d events, want %d", named.events, anon.events, res.Trace.Len())
	}
}

type namedBatchObserver struct{ events int }

func (o *namedBatchObserver) Event(trace.Event)            {}
func (o *namedBatchObserver) ObserveBatch(b []trace.Event) { o.events += len(b) }
func (o *namedBatchObserver) FlightName() string           { return "test-checker" }

type anonBatchObserver struct{ events int }

func (o *anonBatchObserver) Event(trace.Event)            {}
func (o *anonBatchObserver) ObserveBatch(b []trace.Event) { o.events += len(b) }
