package lockset

import (
	"testing"

	"repro/internal/trace"
)

// locksetBenchTrace exercises the Eraser hot paths: lock bookkeeping,
// the ownership state machine, and lockset refinement on shared variables.
// Half the accesses are thread-local (Exclusive stays cheap), half hit
// lock-guarded shared variables that live in Shared/SharedModified.
func locksetBenchTrace(nThreads, rounds int) *trace.Trace {
	b := trace.NewBuilder()
	for t := 0; t < nThreads; t++ {
		b.On(trace.TID(t)).Begin()
	}
	for i := 0; i < rounds; i++ {
		for t := 0; t < nThreads; t++ {
			tid := trace.TID(t)
			b.On(tid).Acq(0).Acq(1)
			b.Read(100).Write(100) // shared-modified under {0,1}
			b.Rel(1)
			b.Read(101).Write(101) // shared-modified under {0}
			b.Rel(0)
			for k := 0; k < 4; k++ {
				b.Read(uint64(t)).Write(uint64(t)) // exclusive
			}
		}
	}
	for t := 0; t < nThreads; t++ {
		b.On(trace.TID(t)).End()
	}
	return b.Trace()
}

// locksetBenchTraceRacy accesses the shared variables with disjoint (and
// eventually empty) locksets so the warning path runs too.
func locksetBenchTraceRacy(nThreads, rounds int) *trace.Trace {
	b := trace.NewBuilder()
	for t := 0; t < nThreads; t++ {
		b.On(trace.TID(t)).Begin()
	}
	for i := 0; i < rounds; i++ {
		for t := 0; t < nThreads; t++ {
			tid := trace.TID(t)
			lock := uint64(t % 2) // alternating guards empty the candidate set
			b.On(tid).Acq(lock)
			b.Read(100).Write(100)
			b.Rel(lock)
			for k := 0; k < 4; k++ {
				b.Read(uint64(200 + t)).Write(uint64(200 + t))
			}
		}
	}
	for t := 0; t < nThreads; t++ {
		b.On(trace.TID(t)).End()
	}
	return b.Trace()
}

func runLocksetBench(b *testing.B, tr *trace.Trace) {
	b.Helper()
	b.ReportAllocs()
	events := len(tr.Events)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewSized(events)
		for _, e := range tr.Events {
			c.Event(e)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkLocksetEvent is the isolated Eraser hot-path benchmark on a
// warning-free trace.
func BenchmarkLocksetEvent(b *testing.B) {
	tr := locksetBenchTrace(4, 250) // ~15k events
	runLocksetBench(b, tr)
}

// BenchmarkLocksetEventRacy adds candidate-set exhaustion and warnings.
func BenchmarkLocksetEventRacy(b *testing.B) {
	tr := locksetBenchTraceRacy(4, 250)
	runLocksetBench(b, tr)
}
