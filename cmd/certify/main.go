// Command certify exhaustively explores a workload's bounded schedule
// space and certifies cooperability over all of it — the strongest
// guarantee the tool offers, practical for small configurations. With
// -dpor it uses conflict-directed exploration (dynamic partial-order
// reduction) to hunt for a violating schedule quickly instead of proving
// their absence.
//
// Usage:
//
//	certify -w philo -size 1 -preemptions 2
//	certify -w bank-buggy -size 2 -dpor
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/movers"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	var (
		workload    = flag.String("w", "", "workload name")
		threads     = flag.Int("threads", 2, "worker override (keep small: the space is exponential)")
		size        = flag.Int("size", 1, "size override (keep small)")
		preemptions = flag.Int("preemptions", 2, "preemption bound")
		maxRuns     = flag.Int("maxruns", 20000, "schedule cap")
		dpor        = flag.Bool("dpor", false, "conflict-directed exploration (bug hunting) instead of exhaustive")
		parallel    = flag.Int("parallel", 1, "replay workers for exhaustive mode (output is identical at any value; ignored with -dpor)")
	)
	flag.Parse()
	if *workload == "" {
		fatal(fmt.Errorf("-w is required"))
	}
	spec, ok := workloads.Get(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q; available: %v", *workload, workloads.Names()))
	}

	explore := sched.Explore
	mode := "exhaustive"
	if *dpor {
		explore = sched.ExploreDPOR
		mode = "conflict-directed (dpor)"
	}
	violations := 0
	deadlocks := 0
	firstReport := ""
	runs, err := explore(spec.New(*threads, *size), sched.ExploreOptions{
		MaxRuns:        *maxRuns,
		MaxPreemptions: *preemptions,
		RecordTrace:    true,
		Parallel:       *parallel,
		Visit: func(res *sched.Result, runErr error) bool {
			if runErr != nil {
				deadlocks++
				if firstReport == "" {
					firstReport = runErr.Error()
				}
				return true
			}
			c := core.AnalyzeTwoPass(res.Trace, core.Options{Policy: movers.DefaultPolicy()})
			if !c.Cooperable() {
				violations++
				if firstReport == "" {
					v := c.Violations()[0]
					firstReport = v.String() + " at " + res.Trace.Strings.Name(v.Event.Loc)
				}
			}
			return true
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s exploration of %s (threads=%d size=%d bound=%d): %d schedules\n",
		mode, *workload, *threads, *size, *preemptions, runs)
	exhausted := runs < *maxRuns
	switch {
	case violations == 0 && deadlocks == 0 && exhausted && !*dpor:
		fmt.Println("CERTIFIED: cooperable and deadlock-free over the entire bounded schedule space")
	case violations == 0 && deadlocks == 0:
		fmt.Println("no violations found (not a certificate: space truncated or dpor mode)")
	default:
		fmt.Printf("FAILED: %d violating schedule(s), %d deadlocking schedule(s)\n", violations, deadlocks)
		fmt.Println("first report:", firstReport)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "certify:", err)
	os.Exit(2)
}
