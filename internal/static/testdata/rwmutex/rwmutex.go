// Package rwmutex is a static-analysis test corpus for reader/writer
// lock recognition: read-side acquisitions block like locks but never
// establish guards, so data read under RLock and written under Lock is
// racy for the writer.
package rwmutex

import "sync"

// Gauge is written under the write lock and read under the read lock.
// The read side demotes the guard: RLock admits concurrent readers, so
// mu does not exclude every other access and the class is racy.
type Gauge struct {
	mu sync.RWMutex
	n  int
}

// Bump is needs-yields: n is racy (see Gauge) and the increment is a
// racy read followed by a racy write — two non-movers in one region.
func (g *Gauge) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Peek is cooperable as written: a single racy read between a right
// mover (acquire) and a left mover (release) matches the reducible
// pattern.
func (g *Gauge) Peek() int {
	g.mu.RLock()
	v := g.n
	g.mu.RUnlock()
	return v
}

// Strict uses the write lock on both sides, so its counter stays
// guarded and Add is yield-free.
type Strict struct {
	mu sync.RWMutex
	n  int
}

// Add is yield-free-cooperable: every access to n holds the write lock.
func (s *Strict) Add() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// View also takes the write lock, keeping n's guard intact.
func (s *Strict) View() int {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	return v
}

// Viewer goes through RLocker: the returned Locker is a read-side view
// of mu, so Lock/Unlock on it must not count as a guard even though the
// calls are spelled like exclusive ones.
type Viewer struct {
	mu sync.RWMutex
	n  int
}

// Set writes under the write lock, but Scan's RLocker reads demote the
// guard, so the increment is two non-movers.
func (v *Viewer) Set() {
	v.mu.Lock()
	v.n++
	v.mu.Unlock()
}

// Scan reads through the RLocker view: cooperable (one racy read inside
// acquire/release), never a guard provider.
func (v *Viewer) Scan() int {
	l := v.mu.RLocker()
	l.Lock()
	x := v.n
	l.Unlock()
	return x
}

// Opportunist uses TryLock, which can fail and therefore provides no
// mutual-exclusion guarantee for guard purposes.
type Opportunist struct {
	mu sync.RWMutex
	n  int
}

// Maybe is needs-yields: the TryLock acquisition is non-guard, so n is
// unguarded-written and the increment has two racy halves.
func (o *Opportunist) Maybe() {
	if o.mu.TryLock() {
		o.n++
		o.mu.Unlock()
	}
}

// Spawn creates the concurrency that makes the classes above racy.
func Spawn(g *Gauge, s *Strict, v *Viewer, o *Opportunist) {
	go func() { g.Bump() }()
	go func() { _ = g.Peek() }()
	go func() { s.Add() }()
	go func() { _ = s.View() }()
	go func() { v.Set() }()
	go func() { _ = v.Scan() }()
	go func() { o.Maybe() }()
	go func() { o.Maybe() }()
}
