package sched

import (
	"errors"
	"fmt"

	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// conflictsDPOR is the cross-thread restriction of trace.Conflict: program
// order is not a scheduling choice, and fork/join orderings are enforced by
// runnability, so only data and lock conflicts justify backtracking.
func conflictsDPOR(a, b trace.Event) bool {
	return a.Tid != b.Tid && trace.Conflict(a, b)
}

// ExploreDPOR explores schedules like Explore but adds backtracking points
// only where the executed trace exhibits a cross-thread conflict — the
// heuristic at the heart of dynamic partial-order reduction (Flanagan &
// Godefroid, POPL 2005): reorderings of non-conflicting operations are
// equivalent, so only conflicting pairs justify a new schedule.
//
// For every conflicting pair (i, j) with i earliest per interfering thread,
// the explorer re-runs with a prefix that, at the decision point of event
// i, schedules j's thread instead. Compared to Explore's exhaustive
// branching this typically visits orders of magnitude fewer runs while
// still distinguishing every conflict-inequivalent outcome on the small
// programs it is meant for (the tests cross-check the outcome sets).
//
// MaxPreemptions is interpreted as in Explore; fork/join/blocking-induced
// switches are free. Budgets, cancellation, and panic isolation behave as
// in Explore: the returned report says how far the reduced search got and
// why it stopped, and a crashing replay is visited as an *ExploreError.
func ExploreDPOR(p *Program, opts ExploreOptions) (*ExploreReport, error) {
	if opts.Visit == nil {
		return nil, fmt.Errorf("sched: ExploreOptions.Visit is required")
	}
	opts.RecordTrace = true // the conflict analysis below needs the trace
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 10000
	}
	bud := StartBudget(opts.Budget)
	defer bud.Stop()
	rep := &ExploreReport{Status: StatusComplete}
	var ftrack *flight.Track
	var exSpan flight.Span
	if fr := flight.Active(); fr != nil {
		ftrack = fr.Track("explore")
		exSpan = ftrack.Begin(flight.CatSched, "explore-dpor", 0, flight.A("max_runs", int64(maxRuns)))
		defer func() {
			exSpan.EndStr(string(rep.Status),
				flight.A("runs", int64(rep.Runs)), flight.A("states", rep.States))
		}()
	}
	stack := [][]trace.TID{nil}
	seen := map[string]bool{"": true}
	for len(stack) > 0 {
		if st := bud.Cutoff(); st != "" {
			rep.Status = st
			ftrack.Instant(flight.CatSched, "cutoff", string(st), flight.A("runs", int64(rep.Runs)))
			break
		}
		if rep.Runs >= maxRuns {
			rep.Status = StatusBudget
			ftrack.Instant(flight.CatSched, "budget", string(StatusBudget), flight.A("runs", int64(rep.Runs)))
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		var runSpan flight.Span
		if ftrack != nil {
			runSpan = ftrack.Begin(flight.CatSched, "schedule", exSpan.ID(), flight.A("depth", int64(len(prefix))))
		}
		res, points, err := replayPrefix(p, &opts, bud.RunContext(), prefix)
		if ftrack != nil {
			EndRunSpan(runSpan, res, err)
		}
		if errors.Is(err, ErrCancelled) {
			rep.Status = bud.CancelStatus()
			rep.Abandoned++
			break
		}
		rep.Runs++
		if res != nil {
			rep.States += int64(res.Events)
			bud.AddStates(int64(res.Events))
		}
		if _, ok := err.(*ExploreError); ok { //nolint:errorlint // replayPrefix returns it unwrapped
			rep.Panics++
			ftrack.Instant(flight.CatSched, "panic", string(rep.Status), flight.A("run", int64(rep.Runs)))
		}
		if !opts.Visit(res, err) {
			rep.Abandoned += len(stack)
			return finishReport(rep), nil
		}
		if res == nil || res.Trace == nil {
			continue
		}
		tr := res.Trace

		// decisionOf[e] = index of the choice point that scheduled event e
		// (the last thread-pick point whose EventIdx equals e). Select
		// decisions are skipped: their "runnable" sets hold case indices,
		// not tids, so a thread flip must target the pick that scheduled
		// the selecting thread, not the case decision stacked on top of it.
		decisionOf := make([]int, len(tr.Events))
		for i := range decisionOf {
			decisionOf[i] = -1
		}
		for pi, pt := range points {
			if !pt.Select && pt.EventIdx < len(decisionOf) {
				decisionOf[pt.EventIdx] = pi
			}
		}
		// Running preemption counts, shared by every flip considered below
		// (recounting per pair was quadratic in trace depth).
		pre := preemptionPrefix(points)
		pushed := 0

		// For each event j, consider the latest earlier conflicting events
		// of each other thread: reversing such a pair is the only
		// reordering that can change behaviour locally. Two predecessors
		// per thread are considered, not one: a blocked lock acquisition
		// leaves no event, so the schedule where T1 takes a lock *before*
		// T0's critical section is reachable only by flipping at T0's
		// acquire, which hides behind T0's release in the observed trace.
		for j := range tr.Events {
			ej := tr.Events[j]
			seenTid := map[trace.TID]int{}
			for i := j - 1; i >= 0; i-- {
				ei := tr.Events[i]
				if ei.Tid == ej.Tid || seenTid[ei.Tid] >= 2 {
					continue
				}
				if !conflictsDPOR(ei, ej) {
					continue
				}
				seenTid[ei.Tid]++
				dp := decisionOf[i]
				if dp < 0 || dp < len(prefix) {
					continue // decision frozen by the current prefix
				}
				pt := points[dp]
				if !containsTID(pt.Runnable, ej.Tid) || ej.Tid == pt.Chosen {
					continue
				}
				// Preemption budget: the flip costs one if the previously
				// running thread was still runnable.
				cost := 0
				if pt.Current >= 0 && containsTID(pt.Runnable, pt.Current) && ej.Tid != pt.Current {
					cost = 1
				}
				if pre[dp]+cost > opts.MaxPreemptions {
					continue
				}
				np := make([]trace.TID, dp+1)
				for k := 0; k < dp; k++ {
					np[k] = points[k].Chosen
				}
				np[dp] = ej.Tid
				key := prefixKey(np)
				if !seen[key] {
					seen[key] = true
					stack = append(stack, np)
					pushed++
				}
			}
		}
		// Select nondeterminism is enumerated exhaustively — no reduction
		// is attempted over select commits, since the dependence relation
		// already treats a select as conflicting with every channel op.
		// Every alternative ready case of every unfrozen select decision is
		// pushed; a select branch never costs a preemption (Current is -1).
		for pi := len(points) - 1; pi >= len(prefix); pi-- {
			pt := points[pi]
			if !pt.Select || len(pt.Runnable) < 2 {
				continue
			}
			for _, alt := range pt.Runnable {
				if alt == pt.Chosen {
					continue
				}
				np := make([]trace.TID, pi+1)
				for k := 0; k < pi; k++ {
					np[k] = points[k].Chosen
				}
				np[pi] = alt
				if key := prefixKey(np); !seen[key] {
					seen[key] = true
					stack = append(stack, np)
					pushed++
				}
			}
		}
		if ftrack != nil && pushed > 0 {
			ftrack.Instant(flight.CatSched, "backtrack", "", flight.A("pushed", int64(pushed)))
		}
	}
	rep.Abandoned += len(stack)
	return finishReport(rep), nil
}

func prefixKey(p []trace.TID) string {
	b := make([]byte, 0, len(p)*2)
	for _, t := range p {
		b = append(b, byte(t), byte(t>>8))
	}
	return string(b)
}
