package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// Parallel exploration with a deterministic merge.
//
// Every entry of the sequential DFS stack is a forced-decision prefix whose
// replay is an independent, fully deterministic Program run — the only
// ordering constraint in Explore is that Visit observes results in DFS
// order and that a run's choice points seed its children. That makes the
// search an ideal work-sharing problem: a driver goroutine walks the exact
// sequential stack discipline while a pool of workers speculatively replays
// pending prefixes pulled from a shared LIFO frontier. Because replays are
// deterministic, a speculative result is byte-identical to what the driver
// would have computed itself, so the merged visit sequence — and therefore
// every table, figure, and certificate built on top — is bit-identical to
// the sequential search, at any worker count.
//
// The frontier is kept in the same order as the driver's stack: workers
// take from the top, which is exactly the prefix the driver needs next, so
// speculation always runs ahead of the merge point rather than sideways.
// When the driver reaches a task no worker has claimed, it claims and
// replays the task inline; when a worker got there first, the driver blocks
// on that task alone while the pool keeps filling the results of deeper
// prefixes.

// exTask is one forced-decision prefix queued for replay.
type exTask struct {
	prefix []trace.TID
	done   chan struct{} // closed once res/err/points are filled
	res    *Result
	err    error
	points []ChoicePoint
	flow   uint64 // flight-recorder flow ID (steal arrow); 0 when not recording
}

// exFrontier is the shared LIFO of unclaimed tasks. Claiming removes a task,
// so each task is replayed exactly once.
type exFrontier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	stack  []*exTask
	closed bool
}

func newExFrontier() *exFrontier {
	f := &exFrontier{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *exFrontier) push(t *exTask) {
	f.mu.Lock()
	f.stack = append(f.stack, t)
	depth := len(f.stack)
	f.mu.Unlock()
	mExploreFrontier.SetMax(int64(depth))
	f.cond.Signal()
}

// take blocks until a task is available (returning the top of the stack) or
// the frontier is closed (returning nil).
func (f *exFrontier) take() *exTask {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.stack) == 0 && !f.closed {
		f.cond.Wait()
	}
	if len(f.stack) == 0 {
		return nil
	}
	t := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return t
}

// claim removes t if it is still unclaimed and reports success. The driver
// only ever claims the task it is about to visit, which is the most recent
// unclaimed push — the top of the stack — so an identity check there
// suffices: anything else means a worker already owns t.
func (f *exFrontier) claim(t *exTask) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.stack); n > 0 && f.stack[n-1] == t {
		f.stack = f.stack[:n-1]
		return true
	}
	return false
}

func (f *exFrontier) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// replayTask executes one guided run and publishes the outcome. The done
// channel is closed unconditionally — and replayPrefix recovers panics
// anywhere in the replay — so a crashing schedule can never leave the
// driver blocked on t.done.
func replayTask(p *Program, opts *ExploreOptions, ctx context.Context, t *exTask) {
	defer close(t.done)
	t.res, t.points, t.err = replayPrefix(p, opts, ctx, t.prefix)
	mExploreReplays.Inc()
}

// exploreParallel is Explore's work-sharing engine for opts.Parallel > 1.
//
// Budgets and cancellation are checked only on the driver, immediately
// before it claims or merges the next task — never on workers — so the
// cutoff lands between two visits and the visited sequence stays exactly
// the sequential prefix. On cutoff the deferred close/wait drains the
// pool: idle workers wake from take() and exit, and in-flight replays
// either finish or (when a cancellation context is set) abort at their
// next per-1024-event check.
func exploreParallel(p *Program, opts ExploreOptions) (*ExploreReport, error) {
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 10000
	}
	mExploreMaxRuns.Set(int64(maxRuns))
	bud := StartBudget(opts.Budget)
	defer bud.Stop()
	fr := flight.Active()
	var ftrack *flight.Track
	var exSpan flight.Span
	frontier := newExFrontier()
	var wg sync.WaitGroup
	for w := 0; w < opts.Parallel-1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wtrack *flight.Track
			if fr != nil {
				wtrack = fr.Track(fmt.Sprintf("explore-worker-%d", w+1))
			}
			for {
				idle := time.Now()
				t := frontier.take()
				mWorkerIdleNs.Add(int64(time.Since(idle)))
				if t == nil {
					return
				}
				var replaySpan flight.Span
				if wtrack != nil {
					wtrack.FlowIn(flight.CatSched, "steal", t.flow)
					replaySpan = wtrack.Begin(flight.CatSched, "replay", 0,
						flight.A("depth", int64(len(t.prefix))))
				}
				busy := time.Now()
				replayTask(p, &opts, bud.RunContext(), t)
				mWorkerBusyNs.Add(int64(time.Since(busy)))
				mExploreSteals.Inc()
				if wtrack != nil {
					EndRunSpan(replaySpan, t.res, t.err)
				}
			}
		}(w)
	}
	// Stop the pool (abandoning unclaimed speculation) and wait for in-
	// flight replays before returning, so no goroutine outlives the search.
	defer func() {
		frontier.close()
		wg.Wait()
	}()

	newTask := func(prefix []trace.TID) *exTask {
		t := &exTask{prefix: prefix, done: make(chan struct{})}
		if ftrack != nil {
			// The flow arrow starts at the push; it lands wherever a worker
			// steals the task (a driver inline replay leaves it dangling,
			// which Perfetto tolerates).
			t.flow = fr.NewID()
			ftrack.FlowOut(flight.CatSched, "steal", t.flow)
		}
		frontier.push(t)
		return t
	}

	if fr != nil {
		ftrack = fr.Track("explore-driver")
		exSpan = ftrack.Begin(flight.CatSched, "explore", 0,
			flight.A("max_runs", int64(maxRuns)), flight.A("workers", int64(opts.Parallel)))
	}
	// stack mirrors the sequential DFS stack; frontier holds the subset of
	// it not yet claimed by a worker, in the same order.
	stack := []*exTask{newTask(nil)}
	rep := &ExploreReport{Status: StatusComplete}
	if ftrack != nil {
		defer func() {
			exSpan.EndStr(string(rep.Status),
				flight.A("runs", int64(rep.Runs)), flight.A("states", rep.States))
		}()
	}
	for len(stack) > 0 {
		if st := bud.Cutoff(); st != "" {
			rep.Status = st
			ftrack.Instant(flight.CatSched, "cutoff", string(st), flight.A("runs", int64(rep.Runs)))
			break
		}
		if rep.Runs >= maxRuns {
			rep.Status = StatusBudget
			ftrack.Instant(flight.CatSched, "budget", string(StatusBudget), flight.A("runs", int64(rep.Runs)))
			break
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var runSpan flight.Span
		if ftrack != nil {
			runSpan = ftrack.Begin(flight.CatSched, "schedule", exSpan.ID(),
				flight.A("depth", int64(len(t.prefix))))
		}
		if frontier.claim(t) {
			replayTask(p, &opts, bud.RunContext(), t)
		} else {
			<-t.done
		}
		if ftrack != nil {
			EndRunSpan(runSpan, t.res, t.err)
		}
		if errors.Is(t.err, ErrCancelled) {
			rep.Status = bud.CancelStatus()
			rep.Abandoned++
			break
		}
		rep.Runs++
		mExploreRuns.Inc()
		if t.res != nil {
			rep.States += int64(t.res.Events)
			bud.AddStates(int64(t.res.Events))
			mExploreStates.Add(int64(t.res.Events))
		}
		if _, ok := t.err.(*ExploreError); ok { //nolint:errorlint // replayPrefix returns it unwrapped
			rep.Panics++
			ftrack.Instant(flight.CatSched, "panic", string(rep.Status), flight.A("run", int64(rep.Runs)))
		}
		if !opts.Visit(t.res, t.err) {
			rep.Abandoned += len(stack)
			return finishReport(rep), nil
		}
		expandPrefixes(t.points, len(t.prefix), opts.MaxPreemptions, func(np []trace.TID) {
			stack = append(stack, newTask(np))
		})
	}
	rep.Abandoned += len(stack)
	return finishReport(rep), nil
}
