package vsync

import "repro/internal/sched"

// Barrier is a cyclic barrier built from a monitor — the synchronization
// backbone of the grid workloads (sor, lufact, moldyn, crypt). Await is a
// cooperative scheduling point: late arrivals block in Wait, which
// cooperability treats as a yield, and the last arrival's broadcast wakes
// the generation.
type Barrier struct {
	parties int
	m       *sched.Mutex
	c       *sched.Cond
	count   *sched.Var
	gen     *sched.Var
}

// NewBarrier declares a barrier's shared state on p for the given number
// of parties.
func NewBarrier(p *sched.Program, name string, parties int) *Barrier {
	m := p.Mutex(name + ".m")
	return &Barrier{
		parties: parties,
		m:       m,
		c:       p.Cond(name+".c", m),
		count:   p.Var(name + ".count"),
		gen:     p.Var(name + ".gen"),
	}
}

// Parties returns the configured party count.
func (b *Barrier) Parties() int { return b.parties }

// Await blocks until all parties arrive, then releases the generation
// together and resets for the next cycle.
func (b *Barrier) Await(t *sched.T) {
	t.Acquire(b.m)
	gen := t.Read(b.gen)
	n := t.Read(b.count) + 1
	t.Write(b.count, n)
	if n == int64(b.parties) {
		t.Write(b.count, 0)
		t.Write(b.gen, gen+1)
		t.Broadcast(b.c)
	} else {
		for t.Read(b.gen) == gen {
			t.Wait(b.c)
		}
	}
	t.Release(b.m)
}
