// Package racybank seeds the corpus's atomicity bug: withdraw checks the
// balance in one critical section and moves the money in another, the
// classic check-then-act compound that both the static pass and the
// dynamic cooperability checker must flag — through their own pipelines,
// at the same source coordinates.
package racybank

import "sync"

var (
	mu sync.Mutex
	a  int = 10
	b  int
	wg sync.WaitGroup
)

func withdraw(amount int) {
	mu.Lock()
	ok := a >= amount
	mu.Unlock()
	if ok {
		mu.Lock()
		a -= amount
		b += amount
		mu.Unlock()
	}
	wg.Done()
}

// Run races two withdrawals that together overdraw the account.
func Run() {
	wg.Add(2)
	go withdraw(6)
	go withdraw(6)
	wg.Wait()
}
