package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/obs/flight"
	"repro/internal/trace"
)

// ExploreOptions bounds an exhaustive schedule exploration.
type ExploreOptions struct {
	// MaxRuns caps the number of schedules executed; 0 means 10000.
	MaxRuns int
	// Budget bounds the search's wall clock, cancellation, state count,
	// and memory (see Budget). Hitting any bound ends the search with a
	// partial — but still deterministic — ExploreReport.
	Budget Budget
	// MaxPreemptions bounds non-forced context switches per schedule
	// (choosing a thread other than the runnable current one); 0 means
	// explore only forced switches (blocking points), matching the
	// cooperative schedule tree.
	MaxPreemptions int
	// RecordTrace forwards to Options.RecordTrace for each run.
	RecordTrace bool
	// Observers are fresh-per-run observer factories (checkers keep state,
	// so each run needs new instances). With Parallel > 1 the factory is
	// called from multiple goroutines and possibly more often than Visit
	// (speculative replays past an early stop are discarded), so it must be
	// safe for concurrent use.
	Observers func() []Observer
	// Visit is called after every run with the result; returning false
	// stops the exploration early. Required. Visit is always invoked from
	// a single goroutine, in a deterministic order independent of Parallel.
	Visit func(res *Result, err error) bool
	// Parallel is the number of OS-parallel replay workers; values <= 1
	// explore sequentially. Because every forced-decision prefix replays
	// deterministically on its own Program run, workers only *compute*
	// results; Visit still observes them in exactly the sequential DFS
	// order, so output is bit-identical across Parallel values.
	Parallel int
}

// Explore systematically enumerates schedules of p using depth-first search
// over scheduling decision points with a preemption bound (iterative
// context bounding, Musuvathi & Qadeer). It returns a report of how far
// the search got and why it stopped. Program-level errors (deadlocks on
// some schedule, panics during a replay) are passed to Visit rather than
// aborting the search; infrastructure errors abort.
//
// With opts.Parallel > 1 the replays are fanned out across a work-sharing
// worker pool (see explore_parallel.go); the visit sequence, run count,
// and report are identical to the sequential search. When a budget or
// cancellation cuts the search off, the visited sequence is still exactly
// a prefix of the sequential search's, and no goroutine outlives the call.
func Explore(p *Program, opts ExploreOptions) (*ExploreReport, error) {
	if opts.Visit == nil {
		return nil, fmt.Errorf("sched: ExploreOptions.Visit is required")
	}
	if opts.Parallel > 1 {
		return exploreParallel(p, opts)
	}
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 10000
	}
	mExploreMaxRuns.Set(int64(maxRuns))
	bud := StartBudget(opts.Budget)
	defer bud.Stop()
	rep := &ExploreReport{Status: StatusComplete}
	var ftrack *flight.Track
	var exSpan flight.Span
	if fr := flight.Active(); fr != nil {
		ftrack = fr.Track("explore")
		exSpan = ftrack.Begin(flight.CatSched, "explore", 0, flight.A("max_runs", int64(maxRuns)))
		defer func() {
			exSpan.EndStr(string(rep.Status),
				flight.A("runs", int64(rep.Runs)), flight.A("states", rep.States))
		}()
	}
	// Each stack entry is a forced decision prefix.
	stack := [][]trace.TID{nil}
	for len(stack) > 0 {
		if st := bud.Cutoff(); st != "" {
			rep.Status = st
			ftrack.Instant(flight.CatSched, "cutoff", string(st), flight.A("runs", int64(rep.Runs)))
			break
		}
		if rep.Runs >= maxRuns {
			rep.Status = StatusBudget
			ftrack.Instant(flight.CatSched, "budget", string(StatusBudget), flight.A("runs", int64(rep.Runs)))
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		var runSpan flight.Span
		if ftrack != nil {
			runSpan = ftrack.Begin(flight.CatSched, "schedule", exSpan.ID(), flight.A("depth", int64(len(prefix))))
		}
		res, points, err := replayPrefix(p, &opts, bud.RunContext(), prefix)
		if ftrack != nil {
			EndRunSpan(runSpan, res, err)
		}
		mExploreReplays.Inc()
		if errors.Is(err, ErrCancelled) {
			// Interrupted mid-run by the deadline or a cancellation: the
			// partial run is an artifact of the cutoff, not a finding.
			rep.Status = bud.CancelStatus()
			rep.Abandoned++
			break
		}
		rep.Runs++
		mExploreRuns.Inc()
		if res != nil {
			rep.States += int64(res.Events)
			bud.AddStates(int64(res.Events))
			mExploreStates.Add(int64(res.Events))
		}
		if _, ok := err.(*ExploreError); ok { //nolint:errorlint // replayPrefix returns it unwrapped
			rep.Panics++
			ftrack.Instant(flight.CatSched, "panic", string(rep.Status), flight.A("run", int64(rep.Runs)))
		}
		if !opts.Visit(res, err) {
			rep.Abandoned += len(stack)
			return finishReport(rep), nil
		}

		expandPrefixes(points, len(prefix), opts.MaxPreemptions, func(np []trace.TID) {
			stack = append(stack, np)
		})
		mExploreFrontier.SetMax(int64(len(stack)))
	}
	rep.Abandoned += len(stack)
	return finishReport(rep), nil
}

// replayPrefix executes one guided run with panic isolation: a panic
// anywhere in the replay — the observer factory, the strategy, the
// scheduler loop, or (via the runtime's own recover) a virtual thread —
// becomes an *ExploreError, so a crashing schedule is a deterministic
// finding instead of a process abort. ctx, when non-nil, aborts the run
// cooperatively with an error wrapping ErrCancelled.
func replayPrefix(p *Program, opts *ExploreOptions, ctx context.Context, prefix []trace.TID) (res *Result, points []ChoicePoint, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, points = nil, nil
			err = &ExploreError{Prefix: prefix, Panic: r, Stack: debug.Stack()}
			mExplorePanics.Inc()
		}
	}()
	g := &Guided{Prefix: prefix}
	ro := Options{Strategy: g, RecordTrace: opts.RecordTrace, Ctx: ctx}
	if opts.Observers != nil {
		ro.Observers = opts.Observers()
	}
	res, err = Run(p, ro)
	var tp *threadPanic
	if errors.As(err, &tp) {
		err = &ExploreError{Prefix: prefix, Panic: tp.val, Stack: tp.stack}
		mExplorePanics.Inc()
	}
	return res, g.Points, err
}

// expandPrefixes pushes the alternative forced-decision prefixes branching
// off points[prefixLen:], in the DFS expansion order (deepest decision
// first, so the search explores nearby schedules before distant ones).
// The preemption budget is tracked with a running prefix sum instead of
// recounting points[:i] per decision, which was quadratic in trace depth.
func expandPrefixes(points []ChoicePoint, prefixLen, maxPreemptions int, push func([]trace.TID)) {
	pre := preemptionPrefix(points)
	for i := len(points) - 1; i >= prefixLen; i-- {
		pt := points[i]
		used := pre[i]
		for _, alt := range pt.Runnable {
			if alt == pt.Chosen {
				continue
			}
			cost := 0
			if containsTID(pt.Runnable, pt.Current) && alt != pt.Current {
				cost = 1
			}
			if used+cost > maxPreemptions {
				continue
			}
			np := make([]trace.TID, i+1)
			for j := 0; j < i; j++ {
				np[j] = points[j].Chosen
			}
			np[i] = alt
			push(np)
		}
	}
}

// preemptionPrefix returns the running preemption counts of a decision-point
// path: out[i] = preemptionsIn(points[:i]), computed in one linear sweep.
func preemptionPrefix(points []ChoicePoint) []int {
	out := make([]int, len(points)+1)
	for i, pt := range points {
		cost := 0
		if pt.Current >= 0 && containsTID(pt.Runnable, pt.Current) && pt.Chosen != pt.Current {
			cost = 1
		}
		out[i+1] = out[i] + cost
	}
	return out
}

// preemptionsIn counts the non-forced switches in a decision-point path:
// points where the previously running thread was still runnable but a
// different thread was chosen.
func preemptionsIn(points []ChoicePoint) int {
	n := 0
	for _, pt := range points {
		if pt.Current >= 0 && containsTID(pt.Runnable, pt.Current) && pt.Chosen != pt.Current {
			n++
		}
	}
	return n
}
