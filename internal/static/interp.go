package static

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/core"
	"repro/internal/movers"
	"repro/internal/trace"
)

const maxInlineDepth = 48
const maxLoopIters = 6

// phaseState is the static analogue of a thread's transaction phase: the
// set of automaton phases reachable at a program point, after merging
// branches. commitLoc keeps one representative commit description for
// diagnostics.
type phaseState struct {
	pre, post bool
	commitLoc string
}

func (p phaseState) union(q phaseState) phaseState {
	out := phaseState{pre: p.pre || q.pre, post: p.post || q.post}
	out.commitLoc = p.commitLoc
	if out.commitLoc == "" {
		out.commitLoc = q.commitLoc
	}
	return out
}

// heldLock is one entry of the abstract lockset.
type heldLock struct {
	k     key
	n     int
	grade bool // acquisition provides mutual exclusion (not a read lock)
}

// snapshot captures the mutable interpreter state for branch merging.
type snapshot struct {
	held map[string]heldLock
	st   phaseState
	live bool
}

func copyHeld(h map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (it *interp) snap() snapshot {
	return snapshot{held: copyHeld(it.held), st: it.st, live: it.live}
}

func (it *interp) restore(s snapshot) {
	it.held = copyHeld(s.held)
	it.st = s.st
	it.live = s.live
}

// mergeSnap joins two control-flow branches: locksets intersect (a lock is
// held only if held on every path), phases union.
func mergeSnap(a, b snapshot) snapshot {
	if !a.live {
		return snapshot{held: copyHeld(b.held), st: b.st, live: b.live}
	}
	if !b.live {
		return snapshot{held: copyHeld(a.held), st: a.st, live: a.live}
	}
	held := map[string]heldLock{}
	for id, la := range a.held {
		if lb, ok := b.held[id]; ok {
			n := la.n
			if lb.n < n {
				n = lb.n
			}
			if n > 0 {
				held[id] = heldLock{k: la.k, n: n, grade: la.grade && lb.grade}
			}
		}
	}
	return snapshot{held: held, st: a.st.union(b.st), live: true}
}

func snapEqual(a, b snapshot) bool {
	if a.live != b.live || a.st.pre != b.st.pre || a.st.post != b.st.post {
		return false
	}
	if len(a.held) != len(b.held) {
		return false
	}
	for id, la := range a.held {
		lb, ok := b.held[id]
		if !ok || la.n != lb.n || la.grade != lb.grade {
			return false
		}
	}
	return true
}

// deferredCall is a call captured by defer, replayed at frame exit.
type deferredCall struct {
	call *ast.CallExpr
	env  *env
}

// frame is one function body being interpreted (root, inline, or
// sub-root).
type frame struct {
	deferred  []deferredCall
	deferSeen map[token.Pos]bool
	exit      snapshot
	exitSet   bool
	results   []binding
	resultSet bool
}

// breakCtx collects break/continue targets for the innermost breakable
// statement.
type breakCtx struct {
	isLoop    bool
	breaks    []snapshot
	continues []snapshot
}

// interp interprets one root declaration (and everything inlined into it)
// against the analysis state.
type interp struct {
	an   *analysis
	root *rootResult
	env  *env
	held map[string]heldLock
	st   phaseState
	live bool

	frames    []*frame
	breakable []*breakCtx
	stack     []string // inline cycle detection (func ids / funclit positions)
	inst      string   // creator-site instance discriminator
	loopDepth int
	ctx       string // abstract thread context
	ctxMulti  bool   // context may have many dynamic instances (fork in loop)

	// lastCallResults carries multi-result bindings from the most recent
	// inlined call to a multi-assign statement.
	lastCallResults []binding
}

func (it *interp) frame() *frame { return it.frames[len(it.frames)-1] }

func (it *interp) unknown(reason string) {
	it.root.addUnknown(reason)
}

// ---- abstract operations -------------------------------------------------

// guardSet extracts the guard-grade singleton locks from the current
// lockset.
func (it *interp) guardSet() map[string]bool {
	out := map[string]bool{}
	for id, l := range it.held {
		if l.grade && !l.k.multi && l.n > 0 {
			out[id] = true
		}
	}
	return out
}

// emit records one abstract op on target k at pos and advances the phase
// automaton. It is the static twin of Runtime.emit.
func (it *interp) emit(op trace.Op, k key, pos token.Pos, guardGrade bool) {
	if !it.live {
		return
	}
	a := it.an
	switch op {
	case trace.OpFork:
		a.sawFork = true
	case trace.OpAcquire:
		l := it.held[k.id]
		l.k = k
		if l.n == 0 {
			l.grade = guardGrade
		} else {
			l.grade = l.grade && guardGrade
		}
		l.n++
		it.held[k.id] = l
	case trace.OpRelease:
		if l, ok := it.held[k.id]; ok {
			l.n--
			if l.n <= 0 {
				delete(it.held, k.id)
			} else {
				it.held[k.id] = l
			}
		}
	case trace.OpRead, trace.OpWrite:
		if a.mode == passCollect && k.valid() {
			a.recordAccess(k, it.guardSet(), it.ctx, it.ctxMulti, op == trace.OpWrite)
		}
	}

	racy := false
	if op == trace.OpRead || op == trace.OpWrite {
		racy = a.keyRacy(k)
	}
	m := a.cfg.Policy.Classify(op, racy)

	if a.mode != passVerify {
		return
	}
	loc := a.posLoc(pos)
	a.opLocs[loc] = true
	if m == movers.Boundary {
		if it.root != nil {
			it.root.boundaries++
			if op == trace.OpYield {
				it.root.yields++
				a.yieldLocs[loc] = true
			}
		}
	}

	// Advance every reachable phase through the shared reduction automaton
	// and union the results; any member violating means some static path
	// through this point needs a yield.
	var next phaseState
	viol := false
	stepOne := func(ph core.Phase) {
		var au core.Automaton
		au.SetPhase(ph)
		out := au.Step(m)
		switch au.Phase() {
		case core.PreCommit:
			next.pre = true
		case core.PostCommit:
			next.post = true
		}
		switch out {
		case core.OutcomeCommit:
			if next.commitLoc == "" {
				next.commitLoc = fmt.Sprintf("%s %s", op, loc)
			}
		case core.OutcomeViolation:
			viol = true
		}
	}
	if !it.st.pre && !it.st.post {
		it.st.pre = true
	}
	prevCommit := it.st.commitLoc
	if it.st.pre {
		stepOne(core.PreCommit)
	}
	if it.st.post {
		stepOne(core.PostCommit)
	}
	if next.post && next.commitLoc == "" {
		next.commitLoc = prevCommit
	}
	it.st = next
	if viol {
		a.addFinding(Finding{
			Loc:    loc,
			Op:     op.String(),
			Mover:  m.String(),
			Commit: prevCommit,
			Target: k.id,
		})
	}
}

// boundaryAt emits a pure scheduling boundary (channel ops, selects).
func (it *interp) boundaryAt(pos token.Pos) {
	it.emit(trace.OpWait, key{}, pos, false)
}

// ---- statements ----------------------------------------------------------

func (it *interp) stmts(list []ast.Stmt) {
	for _, s := range list {
		if !it.live {
			return
		}
		it.stmt(s)
	}
}

func (it *interp) stmt(s ast.Stmt) {
	if s == nil || !it.live {
		return
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		it.stmts(x.List)
	case *ast.ExprStmt:
		it.eval(x.X)
	case *ast.AssignStmt:
		it.assign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var vals []binding
				for _, v := range vs.Values {
					vals = append(vals, it.eval(v))
				}
				for i, name := range vs.Names {
					var b binding
					if i < len(vals) {
						b = vals[i]
					}
					if obj, ok := it.an.info.Defs[name].(*types.Var); ok {
						it.env.define(obj, b)
					}
				}
			}
		}
	case *ast.IfStmt:
		it.stmt(x.Init)
		it.eval(x.Cond)
		before := it.snap()
		it.stmt(x.Body)
		thenSnap := it.snap()
		it.restore(before)
		if x.Else != nil {
			it.stmt(x.Else)
		}
		it.restore(mergeSnap(thenSnap, it.snap()))
	case *ast.ForStmt:
		it.stmt(x.Init)
		it.loop(func() {
			if x.Cond != nil {
				it.eval(x.Cond)
			}
			it.stmt(x.Body)
			it.stmt(x.Post)
		}, x.Cond == nil)
	case *ast.RangeStmt:
		b := it.eval(x.X)
		if tv, ok := it.an.info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				it.boundaryAt(x.Pos())
			}
		}
		it.defineRangeVars(x, b)
		it.loop(func() {
			it.defineRangeVars(x, b)
			it.stmt(x.Body)
		}, false)
	case *ast.SwitchStmt:
		it.stmt(x.Init)
		if x.Tag != nil {
			it.eval(x.Tag)
		}
		it.switchBody(x.Body, false)
	case *ast.TypeSwitchStmt:
		it.stmt(x.Init)
		it.stmt(x.Assign)
		it.switchBody(x.Body, false)
	case *ast.SelectStmt:
		it.switchBody(x.Body, true)
	case *ast.ReturnStmt:
		fr := it.frame()
		var res []binding
		for _, r := range x.Results {
			res = append(res, it.eval(r))
		}
		if !fr.resultSet {
			fr.results = res
			fr.resultSet = true
		} else {
			for i := range fr.results {
				if i >= len(res) || !sameBinding(fr.results[i], res[i]) {
					fr.results[i] = binding{}
				}
			}
		}
		it.mergeExit(fr)
		it.live = false
	case *ast.BranchStmt:
		it.branch(x)
	case *ast.DeferStmt:
		it.deferCall(x)
	case *ast.GoStmt:
		fn := it.eval(x.Call.Fun)
		var args []binding
		for _, a := range x.Call.Args {
			args = append(args, it.eval(a))
		}
		it.emit(trace.OpFork, key{}, x.Pos(), false)
		it.subRoot(fn, args, fmt.Sprintf("go@%s", it.posShort(x.Pos())))
	case *ast.SendStmt:
		it.eval(x.Chan)
		it.eval(x.Value)
		it.boundaryAt(x.Pos())
	case *ast.IncDecStmt:
		it.plainAccess(x.X, false)
		it.plainAccess(x.X, true)
	case *ast.LabeledStmt:
		// Labeled break/continue targets are not modeled precisely; the
		// branch handler degrades them to unknown.
		it.stmt(x.Stmt)
	case *ast.EmptyStmt:
	default:
		// GotoStmt falls out of BranchStmt handling below; anything else
		// unexpected keeps the analysis conservative.
	}
}

func (it *interp) defineRangeVars(x *ast.RangeStmt, src binding) {
	bindOne := func(e ast.Expr, b binding) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj, ok := it.an.info.Defs[id].(*types.Var); ok {
			it.env.define(obj, b)
		} else if obj, ok := it.an.info.Uses[id].(*types.Var); ok {
			it.env.bind(obj, b)
		}
	}
	if x.Key != nil {
		bindOne(x.Key, binding{})
	}
	if x.Value != nil {
		// Ranging over a slice of tracked objects yields the element class.
		var vb binding
		if src.kind == bindKey && src.key.valid() {
			vb = binding{kind: bindKey, key: elemOf(src.key)}
		}
		bindOne(x.Value, vb)
	}
}

// elemOf is the class of elements of a collection key: same identity
// class, multi (many runtime objects behind one static name).
func elemOf(k key) key {
	e := k
	e.multi = true
	return e
}

func (it *interp) branch(x *ast.BranchStmt) {
	if x.Label != nil || x.Tok == token.GOTO {
		it.unknown(fmt.Sprintf("unmodeled %s at %s", x.Tok, it.an.posLoc(x.Pos())))
		it.live = false
		return
	}
	switch x.Tok {
	case token.BREAK:
		if n := len(it.breakable); n > 0 {
			c := it.breakable[n-1]
			c.breaks = append(c.breaks, it.snap())
		}
		it.live = false
	case token.CONTINUE:
		for i := len(it.breakable) - 1; i >= 0; i-- {
			if it.breakable[i].isLoop {
				it.breakable[i].continues = append(it.breakable[i].continues, it.snap())
				break
			}
		}
		it.live = false
	case token.FALLTHROUGH:
		// Handled by switchBody: state simply flows to the next case.
	}
}

// loop runs body to a fixpoint over the abstract state. infinite marks
// `for {}` loops with no condition: without breaks the exit is
// unreachable.
func (it *interp) loop(body func(), infinite bool) {
	entry := it.snap()
	ctx := &breakCtx{isLoop: true}
	it.breakable = append(it.breakable, ctx)
	it.loopDepth++

	state := entry
	for i := 0; i < maxLoopIters; i++ {
		it.restore(state)
		body()
		after := it.snap()
		for _, c := range ctx.continues {
			after = mergeSnap(after, c)
		}
		ctx.continues = nil
		next := mergeSnap(state, after)
		if snapEqual(next, state) {
			break
		}
		state = next
	}

	it.loopDepth--
	it.breakable = it.breakable[:len(it.breakable)-1]

	exit := state
	if infinite {
		exit.live = false
	}
	for _, b := range ctx.breaks {
		exit = mergeSnap(exit, b)
	}
	it.restore(exit)
}

// switchBody interprets case clauses from a common entry state and merges
// their exits. isSelect adds a scheduling boundary per communication
// clause.
func (it *interp) switchBody(body *ast.BlockStmt, isSelect bool) {
	entry := it.snap()
	ctx := &breakCtx{}
	it.breakable = append(it.breakable, ctx)

	var exits []snapshot
	hasDefault := false
	var fall *snapshot
	for _, raw := range body.List {
		start := entry
		if fall != nil {
			start = *fall
			fall = nil
		}
		it.restore(start)
		var stmts []ast.Stmt
		switch cl := raw.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				it.eval(e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				it.stmt(cl.Comm)
				if isSelect {
					it.boundaryAt(cl.Comm.Pos())
				}
			}
			stmts = cl.Body
		}
		fellThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fellThrough = true
			}
		}
		it.stmts(stmts)
		if fellThrough && it.live {
			s := it.snap()
			fall = &s
		} else {
			exits = append(exits, it.snap())
		}
	}
	it.breakable = it.breakable[:len(it.breakable)-1]

	merged := snapshot{live: false}
	for _, e := range exits {
		merged = mergeSnap(merged, e)
	}
	for _, b := range ctx.breaks {
		merged = mergeSnap(merged, b)
	}
	if !hasDefault || len(body.List) == 0 {
		merged = mergeSnap(merged, entry)
	}
	it.restore(merged)
}

func (it *interp) mergeExit(fr *frame) {
	s := it.snap()
	if !fr.exitSet {
		fr.exit = s
		fr.exitSet = true
		return
	}
	fr.exit = mergeSnap(fr.exit, s)
}

func (it *interp) deferCall(x *ast.DeferStmt) {
	fr := it.frame()
	if fr.deferSeen == nil {
		fr.deferSeen = map[token.Pos]bool{}
	}
	// Arguments are evaluated at defer time.
	it.eval(x.Call.Fun)
	for _, a := range x.Call.Args {
		it.eval(a)
	}
	if fr.deferSeen[x.Pos()] {
		return
	}
	fr.deferSeen[x.Pos()] = true
	fr.deferred = append(fr.deferred, deferredCall{call: x.Call, env: it.env})
}

// runDeferred replays deferred calls LIFO at frame exit.
func (it *interp) runDeferred(fr *frame) {
	for i := len(fr.deferred) - 1; i >= 0; i-- {
		d := fr.deferred[i]
		saved := it.env
		it.env = d.env
		it.call(d.call, true)
		it.env = saved
	}
}
