// Package pipeline is the channel-discipline half of the translation
// corpus: a bounded producer, a draining consumer over range, a close,
// an unbuffered join, and a select.
package pipeline

var (
	jobs = make(chan int, 2)
	done = make(chan int)
	quit = make(chan int)
	sum  int
)

func producer() {
	for i := 0; i < 4; i++ {
		jobs <- i
	}
	close(jobs)
}

func consumer() {
	s := 0
	for v := range jobs {
		s += v
	}
	done <- s
}

// Run drives the produce/consume pipeline to completion.
func Run() {
	go producer()
	go consumer()
	sum = <-done
}

func stopper() {
	quit <- 1
}

// Mix exercises select: nothing feeds jobs here, so the quit arm commits.
func Mix() {
	go stopper()
	select {
	case v := <-jobs:
		sum = v
	case <-quit:
		sum = -1
	}
}
