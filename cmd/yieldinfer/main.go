// Command yieldinfer infers the yield annotations a workload needs: the
// set of source locations at which inserting `yield` makes every observed
// schedule cooperable — the paper's annotation-burden measurement.
//
// With -verify DIR the inferred annotations are cross-checked against the
// static cooperability pass over DIR: a yield inferred inside a function
// the static pass proved cooperable is a contradiction (one of the two
// analyses is wrong about that function) and fails the run.
//
// Usage:
//
//	yieldinfer -w crawler -seeds 8
//	yieldinfer -w crawler -o crawler.yields.json -verify internal/workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/movers"
	"repro/internal/spec"
	"repro/internal/static"
	"repro/internal/yield"
)

func main() {
	common := cli.RegisterCommon("yieldinfer")
	var (
		out      = flag.String("o", "", "save the inferred annotations as a yield-spec JSON file")
		minimize = flag.Bool("minimize", false, "greedily drop redundant annotations after inference")
		verify   = flag.String("verify", "", "cross-check inferred yields against the static pass over this source directory; exit 1 on contradiction")
	)
	flag.Parse()
	if common.Workload == "" {
		fatal(fmt.Errorf("-w is required"))
	}
	if err := common.Start(); err != nil {
		fatal(err)
	}
	traces, _, err := common.Battery()
	if err != nil {
		fatal(err)
	}
	if len(traces) == 0 {
		common.Close() //nolint:errcheck
		fmt.Printf("PARTIAL (%s): cutoff before any schedule completed; nothing to infer from\n", common.Status())
		return
	}
	if common.Partial() {
		fmt.Printf("PARTIAL (%s): inferring from the %d schedule(s) completed before cutoff\n",
			common.Status(), len(traces))
	}
	res := yield.Infer(traces, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if *minimize && res.Converged {
		before := res.Count()
		res.Yields = yield.Minimize(traces, core.Options{Policy: movers.DefaultPolicy()}, res.Yields)
		if dropped := before - res.Count(); dropped > 0 {
			fmt.Printf("minimization dropped %d redundant annotation(s)\n", dropped)
		}
	}
	fmt.Printf("workload %s: %d schedules analyzed, %d round(s)\n", common.Workload, len(traces), res.Rounds)
	if res.Count() == 0 {
		fmt.Println("no yield annotations needed: all schedules already cooperable")
	} else {
		fmt.Printf("%d yield annotation(s) required:\n", res.Count())
		for _, loc := range res.Locations(traces[0].Strings) {
			fmt.Printf("  yield before %s\n", loc)
		}
	}
	if res.Residual > 0 {
		fmt.Printf("warning: %d violation(s) at unknown locations cannot be annotated\n", res.Residual)
	}
	fmt.Printf("methods observed: %d, yield-free: %.1f%%\n",
		res.MethodsSeen, res.YieldFreeFraction()*100)
	if *out != "" {
		s := spec.New(common.Workload, res.Yields, traces[0].Strings)
		// New stamps at construction; re-stamp at write time so the file
		// records when it was actually saved, not when inference started.
		s.Stamp("yieldinfer")
		if err := spec.Save(*out, s); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d annotation(s) to %s\n", len(s.Yields), *out)
	}
	disagreements := 0
	if *verify != "" {
		srep, err := static.Analyze([]string{*verify}, static.Config{Policy: movers.DefaultPolicy()})
		if err != nil {
			fatal(fmt.Errorf("-verify: %w", err))
		}
		for _, loc := range res.Locations(traces[0].Strings) {
			for _, f := range srep.Funcs {
				if f.Claimed() && f.Contains(loc) {
					disagreements++
					fmt.Printf("DISAGREEMENT: inference requires a yield at %s, but the static pass proves %s %s\n",
						loc, f.Name, f.Verdict)
				}
			}
		}
		if disagreements == 0 {
			fmt.Printf("static cross-check over %s: %d function(s), no contradictions\n",
				*verify, srep.Stats.Funcs)
		}
	}
	if err := common.Close(); err != nil {
		fatal(err)
	}
	if !res.Converged {
		fmt.Println("NOT CONVERGED")
		os.Exit(1)
	}
	if disagreements > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yieldinfer:", err)
	os.Exit(2)
}
