package yield

import (
	"testing"

	"repro/internal/core"
	"repro/internal/movers"
	"repro/internal/trace"
)

func lockCoupledTrace() *trace.Trace {
	b := trace.NewBuilder()
	b.On(0).Begin().Fork(1)
	b.On(0).At("a.go:10").Acq(10).At("a.go:11").Rel(10).At("a.go:12").Acq(10).At("a.go:13").Rel(10)
	b.On(1).Begin().At("b.go:20").Acq(10).At("b.go:21").Rel(10).At("b.go:22").Acq(10).At("b.go:23").Rel(10).End()
	b.On(0).Join(1).End()
	return b.Trace()
}

func TestInferFindsBothYieldSites(t *testing.T) {
	tr := lockCoupledTrace()
	res := Infer([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.Count() != 2 {
		t.Fatalf("yields = %v, want 2", res.Locations(tr.Strings))
	}
	locs := res.Locations(tr.Strings)
	if locs[0] != "a.go:12" || locs[1] != "b.go:22" {
		t.Fatalf("locations = %v", locs)
	}
	if res.Residual != 0 {
		t.Fatalf("residual = %d", res.Residual)
	}
}

func TestInferredSetMakesTraceCooperable(t *testing.T) {
	tr := lockCoupledTrace()
	res := Infer([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	c := core.AnalyzeTwoPass(tr, core.Options{Policy: movers.DefaultPolicy(), Yields: res.Yields})
	if !c.Cooperable() {
		t.Fatalf("inferred set does not fix trace: %v", c.Violations())
	}
}

func TestInferCleanTraceNeedsNothing(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().Acq(10).Read(1).Write(1).Rel(10).End()
	res := Infer([]*trace.Trace{b.Trace()}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if res.Count() != 0 || !res.Converged || res.Rounds != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInferSeedsFromOptions(t *testing.T) {
	tr := lockCoupledTrace()
	seed := map[trace.LocID]bool{tr.Strings.Intern("a.go:12"): true}
	res := Infer([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy(), Yields: seed}, 0)
	if !res.Converged {
		t.Fatal("not converged")
	}
	if !res.Yields[tr.Strings.Intern("a.go:12")] {
		t.Fatal("seed lost")
	}
	if res.Count() != 2 {
		t.Fatalf("yields = %v", res.Locations(tr.Strings))
	}
}

func TestInferResidualForLocationlessViolations(t *testing.T) {
	// Violations at Loc 0 cannot carry annotations.
	b := trace.NewBuilder()
	b.On(0).Begin().Fork(1)
	b.On(0).Acq(10).Rel(10).Acq(10).Rel(10) // no At(): all locations 0
	b.On(1).Begin().End()
	b.On(0).Join(1).End()
	res := Infer([]*trace.Trace{b.Trace()}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if res.Converged {
		t.Fatal("should not converge with location-less violations")
	}
	if res.Residual == 0 {
		t.Fatal("residual not counted")
	}
}

func TestInferAcrossMultipleTraces(t *testing.T) {
	// Two traces of the "same program" with different interleavings; the
	// union of yield sites must fix both.
	tr1 := lockCoupledTrace()
	b := trace.NewBuilder()
	b.On(0).Begin().Fork(1)
	b.On(1).Begin().At("b.go:20").Acq(10).At("b.go:21").Rel(10).At("b.go:22").Acq(10).At("b.go:23").Rel(10).End()
	b.On(0).At("a.go:10").Acq(10).At("a.go:11").Rel(10).At("a.go:12").Acq(10).At("a.go:13").Rel(10)
	b.On(0).Join(1).End()
	tr2 := b.Trace()
	res := Infer([]*trace.Trace{tr1, tr2}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if !res.Converged {
		t.Fatal("not converged")
	}
	for _, tr := range []*trace.Trace{tr1, tr2} {
		c := core.AnalyzeTwoPass(tr, core.Options{Policy: movers.DefaultPolicy(), Yields: res.Yields})
		if !c.Cooperable() {
			t.Fatalf("union set does not fix: %v", c.Violations())
		}
	}
}

func TestMethodStatistics(t *testing.T) {
	b := trace.NewBuilder()
	b.On(0).Begin().Fork(1)
	b.On(0).Enter(0).At("m.go:1").Acq(10).At("m.go:2").Rel(10).At("m.go:3").Acq(10).At("m.go:4").Rel(10).Exit(0)
	// Yield between the methods so the second starts a fresh transaction;
	// the yield itself happens with an empty method stack and marks nothing.
	b.On(0).At("").Yield()
	b.On(0).Enter(1).At("n.go:1").Acq(10).Read(1).At("n.go:2").Rel(10).Exit(1)
	b.On(1).Begin().End()
	b.On(0).Join(1).End()
	res := Infer([]*trace.Trace{b.Trace()}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	if res.MethodsSeen != 2 {
		t.Fatalf("MethodsSeen = %d", res.MethodsSeen)
	}
	if res.YieldingMethods != 1 {
		t.Fatalf("YieldingMethods = %d", res.YieldingMethods)
	}
	if f := res.YieldFreeFraction(); f != 0.5 {
		t.Fatalf("YieldFreeFraction = %v", f)
	}
}

func TestYieldFreeFractionEmpty(t *testing.T) {
	r := &Result{}
	if r.YieldFreeFraction() != 1 {
		t.Fatal("empty result fraction should be 1")
	}
}

func TestInferRoundsBounded(t *testing.T) {
	tr := lockCoupledTrace()
	res := Infer([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, 1)
	// One round collects but cannot confirm.
	if res.Rounds != 1 || res.Converged {
		t.Fatalf("res = %+v", res)
	}
}

func TestMinimizeDropsRedundantSeeds(t *testing.T) {
	tr := lockCoupledTrace()
	// Seed with every acquire/release location — grossly redundant.
	seeds := map[trace.LocID]bool{}
	for _, loc := range []string{"a.go:10", "a.go:11", "a.go:12", "a.go:13",
		"b.go:20", "b.go:21", "b.go:22", "b.go:23"} {
		seeds[tr.Strings.Intern(loc)] = true
	}
	minimal := Minimize([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, seeds)
	if len(minimal) >= len(seeds) {
		t.Fatalf("nothing dropped: %d -> %d", len(seeds), len(minimal))
	}
	// The minimal set must still fix the trace.
	c := core.AnalyzeTwoPass(tr, core.Options{Policy: movers.DefaultPolicy(), Yields: minimal})
	if !c.Cooperable() {
		t.Fatalf("minimal set insufficient: %v", c.Violations())
	}
	// And be locally minimal: removing any member breaks it.
	for l := range minimal {
		trial := map[trace.LocID]bool{}
		for k := range minimal {
			if k != l {
				trial[k] = true
			}
		}
		c := core.AnalyzeTwoPass(tr, core.Options{Policy: movers.DefaultPolicy(), Yields: trial})
		if c.Cooperable() {
			t.Fatalf("set not minimal: %s removable", tr.Strings.Name(l))
		}
	}
}

func TestMinimizeKeepsInferredSets(t *testing.T) {
	tr := lockCoupledTrace()
	res := Infer([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, 0)
	minimal := Minimize([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, res.Yields)
	if len(minimal) != res.Count() {
		t.Fatalf("inference emitted a non-minimal set: %d -> %d", res.Count(), len(minimal))
	}
}

func TestMinimizeInsufficientInputUnchanged(t *testing.T) {
	tr := lockCoupledTrace()
	// Empty set is insufficient; Minimize must return it untouched.
	got := Minimize([]*trace.Trace{tr}, core.Options{Policy: movers.DefaultPolicy()}, nil)
	if len(got) != 0 {
		t.Fatalf("got = %v", got)
	}
}
