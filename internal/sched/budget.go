package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/trace"
)

// Status classifies how a long-running search ended. Every exploration
// entry point reports one, so a run cut short by a budget or a fault is an
// explicit partial result instead of a silent truncation.
type Status string

const (
	// StatusComplete: the search drained its frontier (or its Visit callback
	// chose to stop) without hitting a budget or a fault.
	StatusComplete Status = "complete"
	// StatusBudget: a resource budget (MaxRuns, MaxStates, or MemBudget)
	// cut the search off with frontier left unexplored.
	StatusBudget Status = "budget-exhausted"
	// StatusDeadline: the wall-clock deadline (Budget.Timeout or a context
	// deadline) expired.
	StatusDeadline Status = "deadline"
	// StatusCancelled: the caller's context was cancelled (SIGINT in the
	// CLI tools).
	StatusCancelled Status = "cancelled"
	// StatusPanic: the search itself ran to completion, but at least one
	// schedule's replay panicked and was reported as a finding.
	StatusPanic Status = "worker-panic"
)

// Budget bounds a long-running exploration. The zero value imposes no
// bounds beyond ExploreOptions.MaxRuns.
type Budget struct {
	// Ctx cancels the search cooperatively: the driver loop checks it
	// before every visit, and each replay checks it every 1024 events, so
	// cancellation never leaks goroutines or blocks on a long run.
	Ctx context.Context
	// Timeout is a wall-clock deadline layered over Ctx; 0 means none.
	Timeout time.Duration
	// MaxStates stops the search once the visited runs have produced this
	// many instrumented events in total; 0 means unlimited.
	MaxStates int64
	// MemBudget stops the search once the process heap exceeds this many
	// bytes (sampled between runs, not per event); 0 means unlimited.
	MemBudget int64
}

// ExploreReport summarizes an exploration: how far it got and why it
// stopped. Up to the cutoff the visited sequence is bit-identical to the
// sequential search's prefix at any worker count, so a partial report is
// still a deterministic, reusable result.
type ExploreReport struct {
	// Runs is the number of schedules visited.
	Runs int
	// States is the total instrumented events across visited runs.
	States int64
	// Abandoned counts frontier prefixes that were queued but never
	// visited because the search was cut off.
	Abandoned int
	// Panics counts replays that panicked and were reported to Visit as
	// *ExploreError findings.
	Panics int
	// Status records why the search ended.
	Status Status
}

// ErrCancelled is wrapped by run errors when Options.Ctx fires mid-run.
// The explorers treat such a run as an artifact of the cutoff (never
// visited); other Run callers can errors.Is against it.
var ErrCancelled = errors.New("sched: run cancelled")

// ExploreError is a panic recovered during one schedule's replay — in the
// replay driver itself (observer factory, strategy) or inside a virtual
// thread (workload body, observer). It is handed to Visit as the run's
// error, so a crashing schedule is a reported finding, not a process
// abort, and because replays are deterministic it appears in the same
// visit slot at any worker count.
type ExploreError struct {
	// Prefix is the forced-decision prefix whose replay panicked;
	// re-exploring it reproduces the crash.
	Prefix []trace.TID
	// Panic is the recovered panic value.
	Panic any
	// Stack is the stack captured at the recovery point.
	Stack []byte
}

func (e *ExploreError) Error() string {
	return fmt.Sprintf("sched: panic replaying prefix %v: %v", e.Prefix, e.Panic)
}

// threadPanic is the structured error the runtime reports for a panic
// recovered inside a virtual thread's goroutine; the explorers rewrap it
// into an *ExploreError carrying the schedule prefix.
type threadPanic struct {
	tid   trace.TID
	name  string
	val   any
	stack []byte
}

func (e *threadPanic) Error() string {
	return fmt.Sprintf("sched: panic in T%d (%s): %v", e.tid, e.name, e.val)
}

// ContextStatus maps a context error to the Status it implies: nil →
// StatusComplete, DeadlineExceeded → StatusDeadline, anything else →
// StatusCancelled.
func ContextStatus(err error) Status {
	switch {
	case err == nil:
		return StatusComplete
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	default:
		return StatusCancelled
	}
}

// memCheckEvery is how many Cutoff calls elapse between heap samples:
// runtime.ReadMemStats stops the world, so it must stay off the per-run
// path when the search is cheap.
const memCheckEvery = 32

// BudgetTracker monitors one Budget across a search loop. The explorers
// create one internally; other long-running loops (the CLI schedule
// battery) share the same cutoff logic through it.
type BudgetTracker struct {
	ctx       context.Context
	cancel    context.CancelFunc
	runCtx    context.Context // nil when no cancellation source exists
	maxStates int64
	memBudget int64
	states    int64
	memTick   int
}

// StartBudget begins tracking b. Call Stop when the search ends to release
// the deadline timer.
func StartBudget(b Budget) *BudgetTracker {
	ctx := b.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() {}
	hasCancel := b.Ctx != nil
	if b.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
		hasCancel = true
	}
	t := &BudgetTracker{
		ctx:       ctx,
		cancel:    cancel,
		maxStates: b.MaxStates,
		memBudget: b.MemBudget,
	}
	if hasCancel {
		t.runCtx = ctx
	}
	if b.MaxStates > 0 {
		mExploreBudgetStates.Set(b.MaxStates)
	}
	if b.MemBudget > 0 {
		mExploreBudgetMem.Set(b.MemBudget)
	}
	return t
}

// RunContext is the context individual runs should carry in Options.Ctx;
// nil when the budget has no cancellation source, keeping the per-event
// hot path free of context checks.
func (t *BudgetTracker) RunContext() context.Context { return t.runCtx }

// AddStates records n more visited instrumented events.
func (t *BudgetTracker) AddStates(n int64) { t.states += n }

// Cutoff returns the Status that should end the search now, or "" while
// the search may continue.
func (t *BudgetTracker) Cutoff() Status {
	if err := t.ctx.Err(); err != nil {
		return ContextStatus(err)
	}
	if t.maxStates > 0 && t.states >= t.maxStates {
		return StatusBudget
	}
	if t.memBudget > 0 {
		if t.memTick%memCheckEvery == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if int64(ms.HeapAlloc) > t.memBudget {
				return StatusBudget
			}
		}
		t.memTick++
	}
	return ""
}

// CancelStatus maps the tracker's context state to a cutoff Status when a
// run came back ErrCancelled, defaulting to StatusCancelled if the
// context has not (yet) recorded an error.
func (t *BudgetTracker) CancelStatus() Status {
	if st := ContextStatus(t.ctx.Err()); st != StatusComplete {
		return st
	}
	return StatusCancelled
}

// Stop releases the tracker's deadline timer.
func (t *BudgetTracker) Stop() { t.cancel() }

// finishReport settles the final status (a completed search that saw
// panics degrades to StatusPanic; cutoffs keep their cause) and flushes
// the cutoff telemetry.
func finishReport(rep *ExploreReport) *ExploreReport {
	if rep.Status == StatusComplete && rep.Panics > 0 {
		rep.Status = StatusPanic
	}
	mExploreAbandoned.Set(int64(rep.Abandoned))
	switch rep.Status {
	case StatusCancelled:
		mExploreCancelled.Inc()
	case StatusDeadline:
		mExploreDeadline.Inc()
	case StatusBudget:
		mExploreBudgetHit.Inc()
	}
	return rep
}
