// Package integration runs the cross-cutting invariants of the whole tool
// stack over the full workload suite with a larger schedule battery than
// the per-package unit tests use. These tests are the repository's "does
// the system hang together" safety net; run with -short to skip the slow
// ones.
package integration

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/lockorder"
	"repro/internal/lockset"
	"repro/internal/movers"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/velodrome"
	"repro/internal/workloads"
	"repro/internal/yield"
)

// battery runs the workload under a wide strategy battery.
func battery(t *testing.T, spec workloads.Spec, seeds int) []*trace.Trace {
	t.Helper()
	strategies := []sched.Strategy{
		sched.Cooperative{},
		&sched.RoundRobin{Quantum: 1},
		&sched.RoundRobin{Quantum: 3},
		&sched.RoundRobin{Quantum: 9},
	}
	for s := 1; s <= seeds; s++ {
		strategies = append(strategies, sched.NewRandom(int64(s)*31+1))
	}
	var traces []*trace.Trace
	for _, strat := range strategies {
		res, err := sched.Run(spec.New(0, 0), sched.Options{Strategy: strat, RecordTrace: true})
		if err != nil {
			t.Fatalf("%s under %s: %v", spec.Name, strat.Name(), err)
		}
		traces = append(traces, res.Trace)
	}
	return traces
}

// TestSuiteInvariants checks, per workload over a wide battery:
//
//  1. Every trace validates structurally.
//  2. Yield inference converges and its set makes every trace cooperable.
//  3. The inferred set survives minimization unchanged (it is minimal).
//  4. Every checker runs to completion on every trace (no panics), and
//     their event counters agree.
//  5. Lock-order analysis reports no unguarded cycles (every workload uses
//     ordered or gated locking by construction).
func TestSuiteInvariants(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			traces := battery(t, spec, seeds)
			for _, tr := range traces {
				if err := tr.Validate(); err != nil {
					t.Fatalf("invalid trace: %v", err)
				}
			}
			opts := core.Options{Policy: movers.DefaultPolicy()}
			inf := yield.Infer(traces, opts, 0)
			if !inf.Converged {
				t.Fatalf("inference did not converge (residual %d)", inf.Residual)
			}
			for _, tr := range traces {
				o := opts
				o.Yields = inf.Yields
				if c := core.AnalyzeTwoPass(tr, o); !c.Cooperable() {
					t.Fatalf("not cooperable after inference: %v", c.Violations())
				}
			}
			// Inference can over-approximate: a yield collected early in a
			// round may render a later site redundant (elevator exhibits
			// this). Minimization must therefore never grow the set, and
			// its result must remain sufficient.
			minimal := yield.Minimize(traces, opts, inf.Yields)
			if len(minimal) > len(inf.Yields) {
				t.Errorf("minimization grew the set: %d -> %d", len(inf.Yields), len(minimal))
			}
			for _, tr := range traces {
				o := opts
				o.Yields = minimal
				if c := core.AnalyzeTwoPass(tr, o); !c.Cooperable() {
					t.Fatalf("minimal set insufficient: %v", c.Violations())
				}
			}
			lo := lockorder.New()
			for _, tr := range traces {
				n := tr.Len()
				if d := race.Analyze(tr); d.Events() != n {
					t.Fatalf("fasttrack consumed %d of %d events", d.Events(), n)
				}
				if ls := lockset.Analyze(tr); ls.Events() != n {
					t.Fatalf("lockset consumed %d of %d events", ls.Events(), n)
				}
				if ac := atom.Analyze(tr, atom.Options{MethodsAtomic: true}); ac.Events() != n {
					t.Fatalf("atomizer consumed %d of %d events", ac.Events(), n)
				}
				velodrome.Analyze(tr, velodrome.Options{MethodsAtomic: true})
				for _, e := range tr.Events {
					lo.Event(e)
				}
			}
			if ws := lo.Unguarded(); len(ws) != 0 {
				t.Errorf("unexpected potential deadlocks: %v", ws)
			}
		})
	}
}

// TestReplayAcrossSuite replays every workload's recorded schedule and
// demands a bit-identical trace — the reproducibility guarantee end users
// rely on when sharing failing schedules.
func TestReplayAcrossSuite(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			orig, err := sched.Run(spec.New(0, 0), sched.Options{Strategy: sched.NewRandom(99), RecordTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sched.Run(spec.New(0, 0), sched.Options{Strategy: sched.NewReplay(orig.Schedule), RecordTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(orig.Trace.Events) != len(rep.Trace.Events) {
				t.Fatalf("replay length %d != %d", len(rep.Trace.Events), len(orig.Trace.Events))
			}
			for i := range orig.Trace.Events {
				if orig.Trace.Events[i] != rep.Trace.Events[i] {
					t.Fatalf("replay diverged at event %d", i)
				}
			}
		})
	}
}

// TestBuggyWorkloadsCaughtBySomeChecker asserts the planted bugs never go
// completely unnoticed across the battery.
func TestBuggyWorkloadsCaughtBySomeChecker(t *testing.T) {
	for _, spec := range workloads.BuggyOnes() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			traces := battery(t, spec, 6)
			caught := false
			for _, tr := range traces {
				if len(race.Analyze(tr).Races()) > 0 {
					caught = true
				}
				if !core.AnalyzeTwoPass(tr, core.Options{Policy: movers.DefaultPolicy()}).Cooperable() {
					caught = true
				}
			}
			if !caught {
				t.Fatal("no checker noticed the planted bug on any schedule")
			}
		})
	}
}
