// Package dynchan must fail translation: channel identities and
// capacities must be compile-time resolvable.
package dynchan

func Run() {
	n := 3
	ch := make(chan int, n)
	ch <- 1
	<-ch
}
