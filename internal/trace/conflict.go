package trace

// Conflict reports whether two events (in either order) conflict —
// reordering them could change behaviour. Conflicts define trace
// equivalence (see internal/equiv) and drive both violation explanation
// and partial-order-reduced exploration:
//
//   - same thread (program order);
//   - operations on the same lock (acquire/release/wait/notify);
//   - accesses to the same plain variable, at least one writing;
//   - accesses to the same volatile, at least one writing;
//   - a fork and any event of the forked thread;
//   - a join and any event of the joined thread.
func Conflict(a, b Event) bool {
	if a.Tid == b.Tid {
		return true
	}
	switch {
	case isSyncOp(a.Op) && isSyncOp(b.Op):
		return a.Target == b.Target
	case a.Op.IsAccess() && b.Op.IsAccess():
		return a.Target == b.Target && (a.Op.IsWrite() || b.Op.IsWrite())
	case a.Op.IsVolatile() && b.Op.IsVolatile():
		return a.Target == b.Target && (a.Op.IsWrite() || b.Op.IsWrite())
	case a.Op == OpFork:
		return TID(a.Target) == b.Tid
	case b.Op == OpFork:
		return TID(b.Target) == a.Tid
	case a.Op == OpJoin:
		return TID(a.Target) == b.Tid
	case b.Op == OpJoin:
		return TID(b.Target) == a.Tid
	}
	return false
}

// isSyncOp reports whether the op addresses a lock for conflict purposes.
func isSyncOp(o Op) bool {
	switch o {
	case OpAcquire, OpRelease, OpWait, OpNotify:
		return true
	}
	return false
}
