package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/flight"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden snapshots instead of comparing")

// sampleRecording builds a fully deterministic recording (explicit
// timestamps and span IDs, no wall clock) shaped like a small parallel
// exploration: a driver span with a nested schedule, a steal flow to a
// worker, and a worker replay span.
func sampleRecording() flight.Recording {
	r := flight.New(flight.Options{TrackCap: 64})
	d := r.Track("explore-driver")
	w := r.Track("explore-worker-1")

	d.Emit(flight.Event{TS: 1000, ID: 1, Kind: flight.KindBegin, Cat: flight.CatSched, Name: "explore",
		Args: [4]flight.Arg{flight.A("max_runs", 64)}})
	d.Emit(flight.Event{TS: 2000, ID: 2, Parent: 1, Kind: flight.KindBegin, Cat: flight.CatSched, Name: "schedule",
		Args: [4]flight.Arg{flight.A("depth", 0)}})
	d.Emit(flight.Event{TS: 2500, ID: 7, Kind: flight.KindFlowOut, Cat: flight.CatSched, Name: "steal"})
	d.Emit(flight.Event{TS: 6000, ID: 2, Kind: flight.KindEnd, Cat: flight.CatSched, Name: "schedule", Str: "ok",
		Args: [4]flight.Arg{flight.A("events", 42)}})
	d.Emit(flight.Event{TS: 9000, ID: 1, Kind: flight.KindEnd, Cat: flight.CatSched, Name: "explore", Str: "complete"})

	w.Emit(flight.Event{TS: 3000, ID: 7, Kind: flight.KindFlowIn, Cat: flight.CatSched, Name: "steal"})
	w.Emit(flight.Event{TS: 3500, ID: 3, Kind: flight.KindBegin, Cat: flight.CatSched, Name: "replay",
		Args: [4]flight.Arg{flight.A("depth", 1)}})
	w.Emit(flight.Event{TS: 4000, Kind: flight.KindInstant, Cat: flight.CatChecker, Name: "budget", Str: "budget-states"})
	w.Emit(flight.Event{TS: 8000, ID: 3, Kind: flight.KindEnd, Cat: flight.CatSched, Name: "replay"})
	return r.Snapshot()
}

// writeSample exports the sample as trace_event JSON under dir.
func writeSample(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "in.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := flight.WriteJSON(f, sampleRecording()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkGolden compares got against the named snapshot in testdata,
// rewriting it under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden snapshot rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden snapshot missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestJSONGolden pins the exported trace_event JSON byte-for-byte.
func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := flight.WriteJSON(&buf, sampleRecording()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_golden.json", buf.Bytes())
}

// TestConvertRoundTrip drives the acceptance criterion: trace_event JSON
// round-trips through the tool — JSON → spill → JSON — byte-identically.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir)
	spill := filepath.Join(dir, "mid.bin")
	back := filepath.Join(dir, "back.json")

	var out strings.Builder
	if err := run([]string{"-o", spill, in}, &out); err != nil {
		t.Fatal(err)
	}
	if want := "wrote 9 events on 2 tracks to " + spill + "\n"; out.String() != want {
		t.Fatalf("convert output = %q, want %q", out.String(), want)
	}
	if err := run([]string{"-o", back, spill}, &out); err != nil {
		t.Fatal(err)
	}

	orig, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, got) {
		t.Errorf("JSON → spill → JSON is not byte-identical\n--- original ---\n%s\n--- round-tripped ---\n%s", orig, got)
	}
}

// TestAttributionGolden pins the default top-N attribution table.
func TestAttributionGolden(t *testing.T) {
	in := writeSample(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{in}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "attr_golden.txt", out.Bytes())
}

// TestMergeAndFilter merges two copies and filters to scheduler events.
func TestMergeAndFilter(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir)
	merged := filepath.Join(dir, "merged.json")
	var out strings.Builder
	if err := run([]string{"-cat", "sched", "-o", merged, in, in}, &out); err != nil {
		t.Fatal(err)
	}
	// 9 events per copy, minus the one CatChecker instant each: 16 on 4 tracks.
	if want := "wrote 16 events on 4 tracks to " + merged + "\n"; out.String() != want {
		t.Fatalf("merge output = %q, want %q", out.String(), want)
	}
	f, err := os.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := flight.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rec.Tracks {
		for _, e := range tr.Events {
			if e.Cat != flight.CatSched {
				t.Fatalf("filter leaked a %s event: %+v", e.Cat, e)
			}
		}
	}
}

// TestTracksSummary checks the per-track listing.
func TestTracksSummary(t *testing.T) {
	in := writeSample(t, t.TempDir())
	var out bytes.Buffer
	if err := run([]string{"-tracks", in}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"explore-driver", "explore-worker-1", "2 tracks, 9 events"} {
		if !strings.Contains(s, want) {
			t.Fatalf("tracks summary missing %q:\n%s", want, s)
		}
	}
}

// TestErrors covers the user-facing failure modes.
func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no input files: want error")
	}
	if err := run([]string{"nope.json"}, &out); err == nil {
		t.Fatal("missing file: want error")
	}
	in := writeSample(t, t.TempDir())
	if err := run([]string{"-cat", "bogus", in}, &out); err == nil || !strings.Contains(err.Error(), "unknown category") {
		t.Fatalf("bogus category: want unknown-category error, got %v", err)
	}
}
